// Unit tests for the dense tensor core: construction, views, element access,
// elementwise kernels, reductions and block movement.
#include <gtest/gtest.h>

#include "tensor/kernels.hpp"
#include "tensor/tensor.hpp"

namespace tsr {
namespace {

TEST(Shape, NumelAndToString) {
  EXPECT_EQ(shape_numel({}), 1);
  EXPECT_EQ(shape_numel({0}), 0);
  EXPECT_EQ(shape_numel({2, 3, 4}), 24);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
  EXPECT_EQ(shape_to_string({}), "[]");
}

TEST(Shape, NegativeDimensionThrows) {
  EXPECT_THROW(shape_numel({2, -1}), std::invalid_argument);
}

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.ndim(), 0);
  EXPECT_EQ(t.numel(), 0);
}

TEST(Tensor, ZerosOnesFull) {
  Tensor z = Tensor::zeros({2, 3});
  Tensor o = Tensor::ones({2, 3});
  Tensor f = Tensor::full({2, 3}, 2.5f);
  for (std::int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(z.at(i), 0.0f);
    EXPECT_EQ(o.at(i), 1.0f);
    EXPECT_EQ(f.at(i), 2.5f);
  }
}

TEST(Tensor, FromAndOf) {
  Tensor t = Tensor::from({1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(1, 2), 6.0f);
  Tensor v = Tensor::of({7, 8, 9});
  EXPECT_EQ(v.ndim(), 1);
  EXPECT_EQ(v.at(2), 9.0f);
}

TEST(Tensor, FromRejectsWrongCount) {
  EXPECT_THROW(Tensor::from({1, 2, 3}, {2, 2}), std::invalid_argument);
}

TEST(Tensor, RowMajorIndexing) {
  Tensor t = Tensor::from({0, 1, 2, 3, 4, 5, 6, 7}, {2, 2, 2});
  EXPECT_EQ(t.at(0, 0, 0), 0.0f);
  EXPECT_EQ(t.at(0, 0, 1), 1.0f);
  EXPECT_EQ(t.at(0, 1, 0), 2.0f);
  EXPECT_EQ(t.at(1, 0, 0), 4.0f);
  EXPECT_EQ(t.at(1, 1, 1), 7.0f);
}

TEST(Tensor, FourDimIndexing) {
  Tensor t({2, 3, 4, 5});
  t.fill(0.0f);
  t.at(1, 2, 3, 4) = 42.0f;
  EXPECT_EQ(t.at(2 * 3 * 4 * 5 - 1), 42.0f);
}

TEST(Tensor, NegativeDimAccessor) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-2), 3);
  EXPECT_EQ(t.dim(-3), 2);
  EXPECT_THROW(t.dim(3), std::invalid_argument);
}

TEST(Tensor, ReshapeSharesStorage) {
  Tensor t = Tensor::from({1, 2, 3, 4}, {2, 2});
  Tensor v = t.reshape({4});
  EXPECT_TRUE(t.shares_storage_with(v));
  v.at(0) = 99.0f;
  EXPECT_EQ(t.at(0, 0), 99.0f);
}

TEST(Tensor, ReshapeRejectsWrongNumel) {
  Tensor t({2, 2});
  EXPECT_THROW(t.reshape({3}), std::invalid_argument);
}

TEST(Tensor, AsMatrixCollapsesLeadingDims) {
  Tensor t({2, 3, 4});
  Tensor m = t.as_matrix();
  EXPECT_EQ(m.dim(0), 6);
  EXPECT_EQ(m.dim(1), 4);
  EXPECT_TRUE(t.shares_storage_with(m));
  Tensor v = Tensor::of({1, 2, 3}).as_matrix();
  EXPECT_EQ(v.dim(0), 1);
  EXPECT_EQ(v.dim(1), 3);
}

TEST(Tensor, CloneIsDeep) {
  Tensor t = Tensor::from({1, 2}, {2});
  Tensor c = t.clone();
  EXPECT_FALSE(t.shares_storage_with(c));
  c.at(0) = 50.0f;
  EXPECT_EQ(t.at(0), 1.0f);
}

TEST(Tensor, CopyFrom) {
  Tensor a = Tensor::zeros({4});
  Tensor b = Tensor::from({1, 2, 3, 4}, {4});
  a.copy_from(b);
  EXPECT_EQ(a.at(3), 4.0f);
  Tensor wrong({3});
  EXPECT_THROW(a.copy_from(wrong), std::invalid_argument);
}

// ---- kernels ---------------------------------------------------------------

TEST(Kernels, AddSubMul) {
  Tensor a = Tensor::from({1, 2, 3}, {3});
  Tensor b = Tensor::from({10, 20, 30}, {3});
  EXPECT_EQ(add(a, b).at(2), 33.0f);
  EXPECT_EQ(sub(b, a).at(1), 18.0f);
  EXPECT_EQ(mul(a, b).at(0), 10.0f);
  Tensor c({2});
  EXPECT_THROW(add(a, c), std::invalid_argument);
}

TEST(Kernels, AxpyAndScale) {
  Tensor x = Tensor::from({1, 1}, {2});
  Tensor y = Tensor::from({2, 3}, {2});
  axpy(2.0f, x, y);
  EXPECT_EQ(y.at(0), 4.0f);
  EXPECT_EQ(y.at(1), 5.0f);
  scale(y, 0.5f);
  EXPECT_EQ(y.at(0), 2.0f);
  Tensor s = scaled(x, 3.0f);
  EXPECT_EQ(s.at(0), 3.0f);
  EXPECT_EQ(x.at(0), 1.0f);  // source untouched
}

TEST(Kernels, AddBiasBroadcastsOverLastDim) {
  Tensor x = Tensor::zeros({2, 2, 3});
  Tensor b = Tensor::from({1, 2, 3}, {3});
  add_bias(x, b);
  EXPECT_EQ(x.at(0, 0, 0), 1.0f);
  EXPECT_EQ(x.at(1, 1, 2), 3.0f);
}

TEST(Kernels, BiasGradSumsLeadingDims) {
  Tensor dy = Tensor::ones({2, 3, 4});
  Tensor g = bias_grad(dy);
  ASSERT_EQ(g.dim(0), 4);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(g.at(i), 6.0f);
}

TEST(Kernels, Reductions) {
  Tensor t = Tensor::from({-3, 1, 2}, {3});
  EXPECT_FLOAT_EQ(sum(t), 0.0f);
  EXPECT_FLOAT_EQ(mean(t), 0.0f);
  EXPECT_FLOAT_EQ(max_abs(t), 3.0f);
  Tensor u = Tensor::from({-3, 1, 5}, {3});
  EXPECT_FLOAT_EQ(max_abs_diff(t, u), 3.0f);
}

TEST(Kernels, Allclose) {
  Tensor a = Tensor::from({1.0f, 2.0f}, {2});
  Tensor b = Tensor::from({1.0f + 1e-6f, 2.0f}, {2});
  EXPECT_TRUE(allclose(a, b));
  Tensor c = Tensor::from({1.5f, 2.0f}, {2});
  EXPECT_FALSE(allclose(a, c));
  EXPECT_FALSE(allclose(a, Tensor::zeros({3})));
}

TEST(Kernels, SliceAndPasteBlockRoundTrip) {
  Tensor m = Tensor::from({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, {3, 4});
  Tensor blk = slice_block(m, 1, 1, 2, 2);
  EXPECT_EQ(blk.at(0, 0), 5.0f);
  EXPECT_EQ(blk.at(1, 1), 10.0f);
  Tensor dst = Tensor::zeros({3, 4});
  paste_block(dst, blk, 1, 1);
  EXPECT_EQ(dst.at(2, 2), 10.0f);
  EXPECT_EQ(dst.at(0, 0), 0.0f);
  EXPECT_THROW(slice_block(m, 2, 3, 2, 2), std::invalid_argument);
}

TEST(Kernels, Transpose2D) {
  Tensor m = Tensor::from({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor t = transpose2d(m);
  ASSERT_EQ(t.dim(0), 3);
  ASSERT_EQ(t.dim(1), 2);
  EXPECT_EQ(t.at(2, 1), 6.0f);
  EXPECT_EQ(t.at(0, 1), 4.0f);
}

TEST(Kernels, HcatVcat) {
  Tensor a = Tensor::from({1, 2}, {2, 1});
  Tensor b = Tensor::from({3, 4}, {2, 1});
  Tensor h = hcat({a, b});
  ASSERT_EQ(h.dim(1), 2);
  EXPECT_EQ(h.at(0, 1), 3.0f);
  Tensor v = vcat({a, b});
  ASSERT_EQ(v.dim(0), 4);
  EXPECT_EQ(v.at(2, 0), 3.0f);
}

// Property sweep: slice/paste partition reassembly is exact for many shapes.
class BlockRoundTrip : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BlockRoundTrip, PartitionReassembles) {
  const auto [rows, cols] = GetParam();
  Tensor m({rows, cols});
  for (std::int64_t i = 0; i < m.numel(); ++i) m.at(i) = static_cast<float>(i);
  // Cut into 2x2 quadrants when divisible, else 1x1.
  const int br = rows % 2 == 0 ? rows / 2 : rows;
  const int bc = cols % 2 == 0 ? cols / 2 : cols;
  Tensor out = Tensor::zeros({rows, cols});
  for (int r0 = 0; r0 < rows; r0 += br) {
    for (int c0 = 0; c0 < cols; c0 += bc) {
      paste_block(out, slice_block(m, r0, c0, br, bc), r0, c0);
    }
  }
  EXPECT_FLOAT_EQ(max_abs_diff(m, out), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, BlockRoundTrip,
                         ::testing::Values(std::pair{2, 2}, std::pair{4, 6},
                                           std::pair{3, 5}, std::pair{8, 2},
                                           std::pair{1, 7}, std::pair{16, 16}));

}  // namespace
}  // namespace tsr
