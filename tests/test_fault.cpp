// Fault-injection subsystem (src/fault/): plan parsing, null-plan
// byte-identity, deterministic kill / straggler / delay / drop / duplicate
// behavior across both SPMD backends and worker counts, and composition with
// the threads-backend deadlock watchdog.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "topology/machine_spec.hpp"

namespace tsr::fault {
namespace {

// Scoped environment override (same idiom as test_runtime.cpp): sets or
// clears a variable for one test, restores the previous value on destruction.
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    if (const char* v = std::getenv(name)) {
      had_ = true;
      old_ = v;
    }
  }
  ~EnvGuard() {
    if (had_) {
      setenv(name_, old_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }
  void set(const std::string& value) { setenv(name_, value.c_str(), 1); }
  void clear() { unsetenv(name_); }

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

// The backend/worker matrix the fault semantics must be invariant across.
// An empty spmd string means "leave the default" (fibers, or threads under
// sanitizers — both must behave identically anyway, which is the point).
struct Backend {
  const char* label;
  const char* spmd;     // "" = default
  const char* workers;  // "" = default
};

const Backend kMatrix[] = {
    {"fibers-w1", "", "1"},
    {"fibers-w4", "", "4"},
    {"threads", "threads", ""},
};

void apply_backend(const Backend& b, EnvGuard& spmd, EnvGuard& workers) {
  if (b.spmd[0] != '\0') {
    spmd.set(b.spmd);
  } else {
    spmd.clear();
  }
  if (b.workers[0] != '\0') {
    workers.set(b.workers);
  } else {
    workers.clear();
  }
}

constexpr int kRanks = 8;  // the [2,2,2] Tesseract grid

// Deterministic collective workload: every rank contributes a seeded vector,
// the cluster all-reduces it repeatedly with a sendrecv ring shift between
// iterations (so there is always a pending receive for a kill to strand).
struct RunResult {
  std::vector<std::vector<float>> data;  // per-rank final payload
  double makespan = 0.0;
  comm::CommStats stats;
};

RunResult run_workload(comm::World& world, int iters = 6, int n = 96) {
  RunResult out;
  out.data.assign(static_cast<std::size_t>(world.size()), {});
  world.run([&](comm::Communicator& c) {
    std::vector<float> v(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      v[static_cast<std::size_t>(i)] =
          0.25f * static_cast<float>((c.rank() * 31 + i) % 17) - 1.0f;
    }
    std::vector<float> shifted(v.size());
    for (int it = 0; it < iters; ++it) {
      c.all_reduce(v);
      const int dst = (c.rank() + 1) % c.size();
      const int src = (c.rank() + c.size() - 1) % c.size();
      c.sendrecv(dst, v, src, shifted, /*tag=*/static_cast<std::uint64_t>(it));
      v.swap(shifted);
    }
    out.data[static_cast<std::size_t>(c.rank())] = v;
  });
  out.makespan = world.max_sim_time();
  out.stats = world.total_stats();
  return out;
}

bool bitwise_equal(const std::vector<std::vector<float>>& a,
                   const std::vector<std::vector<float>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t r = 0; r < a.size(); ++r) {
    if (a[r].size() != b[r].size()) return false;
    if (!a[r].empty() &&
        std::memcmp(a[r].data(), b[r].data(), a[r].size() * sizeof(float)) !=
            0) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Plan parsing
// ---------------------------------------------------------------------------

TEST(FaultPlan, EmptyByDefault) {
  FaultPlan p;
  EXPECT_TRUE(p.empty());
  p.recv_timeout_ms = 100;
  EXPECT_FALSE(p.empty());
}

TEST(FaultPlan, JsonRoundTrip) {
  FaultPlan p;
  p.seed = 42;
  p.recv_timeout_ms = 1500;
  p.max_retries = 5;
  p.kills.push_back(KillSpec{3, 20, -1.0});
  p.kills.push_back(KillSpec{-1, -1, 0.125});
  p.delays.push_back(DelaySpec{0, 1, 1e-4, 5e-5, 0.5, 10});
  p.drops.push_back(DropSpec{2, -1, 4, 2, 2e-3});
  p.duplicates.push_back(DuplicateSpec{-1, 3, 0.25, -1});
  p.slow_ranks.push_back(SlowRankSpec{0, 2.5});
  p.slow_links.push_back(SlowLinkSpec{0, 1, 1.5, 3.0});

  std::string err;
  const FaultPlan q = FaultPlan::from_json_text(p.to_json().dump(), &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(q.seed, 42u);
  EXPECT_EQ(q.recv_timeout_ms, 1500);
  EXPECT_EQ(q.max_retries, 5);
  ASSERT_EQ(q.kills.size(), 2u);
  EXPECT_EQ(q.kills[0].rank, 3);
  EXPECT_EQ(q.kills[0].at_op, 20);
  EXPECT_DOUBLE_EQ(q.kills[1].at_time, 0.125);
  ASSERT_EQ(q.delays.size(), 1u);
  EXPECT_DOUBLE_EQ(q.delays[0].jitter, 5e-5);
  EXPECT_EQ(q.delays[0].count, 10);
  ASSERT_EQ(q.drops.size(), 1u);
  EXPECT_EQ(q.drops[0].times, 2);
  ASSERT_EQ(q.duplicates.size(), 1u);
  EXPECT_DOUBLE_EQ(q.duplicates[0].probability, 0.25);
  ASSERT_EQ(q.slow_ranks.size(), 1u);
  EXPECT_DOUBLE_EQ(q.slow_ranks[0].scale, 2.5);
  ASSERT_EQ(q.slow_links.size(), 1u);
  EXPECT_DOUBLE_EQ(q.slow_links[0].beta_scale, 3.0);
}

TEST(FaultPlan, MalformedJsonReportsError) {
  std::string err;
  const FaultPlan p = FaultPlan::from_json_text("{\"kills\": 7}", &err);
  EXPECT_FALSE(err.empty());
  EXPECT_TRUE(p.empty());
}

TEST(FaultPlan, EnvScalarsBuildPlan) {
  EnvGuard plan("TESSERACT_FAULT_PLAN");
  EnvGuard seed("TESSERACT_FAULT_SEED");
  EnvGuard kill("TESSERACT_FAULT_KILL_RANK");
  EnvGuard kill_op("TESSERACT_FAULT_KILL_AT_OP");
  EnvGuard slow("TESSERACT_FAULT_SLOW_RANK");
  EnvGuard scale("TESSERACT_FAULT_SLOW_SCALE");
  plan.clear();
  seed.set("9");
  kill.set("2");
  kill_op.set("15");
  slow.set("0");
  scale.set("3.0");
  const FaultPlan p = plan_from_env();
  EXPECT_EQ(p.seed, 9u);
  ASSERT_EQ(p.kills.size(), 1u);
  EXPECT_EQ(p.kills[0].rank, 2);
  EXPECT_EQ(p.kills[0].at_op, 15);
  ASSERT_EQ(p.slow_ranks.size(), 1u);
  EXPECT_DOUBLE_EQ(p.slow_ranks[0].scale, 3.0);
}

TEST(FaultPlan, EnvInlineJsonWins) {
  EnvGuard plan("TESSERACT_FAULT_PLAN");
  EnvGuard kill("TESSERACT_FAULT_KILL_RANK");
  kill.set("5");  // must be ignored: TESSERACT_FAULT_PLAN takes precedence
  plan.set("{\"seed\": 77, \"slow_ranks\": [{\"rank\": 1, \"scale\": 2.0}]}");
  const FaultPlan p = plan_from_env();
  EXPECT_EQ(p.seed, 77u);
  EXPECT_TRUE(p.kills.empty());
  ASSERT_EQ(p.slow_ranks.size(), 1u);
  EXPECT_EQ(p.slow_ranks[0].rank, 1);
}

TEST(FaultPlan, EnvInvalidJsonThrows) {
  EnvGuard plan("TESSERACT_FAULT_PLAN");
  plan.set("{not json");
  EXPECT_THROW(plan_from_env(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Null-plan byte-identity
// ---------------------------------------------------------------------------

// The acceptance bar for the whole subsystem: a World with no plan, a World
// with an explicitly installed empty plan, and a World with a "neutral" plan
// (slowdown 1.0) must produce byte-identical payloads, identical byte
// counters and identical simulated clocks, on every backend.
TEST(FaultNull, EmptyPlanIsByteIdentical) {
  EnvGuard spmd("TESSERACT_SPMD");
  EnvGuard workers("TESSERACT_WORKERS");
  spmd.clear();
  workers.set("1");
  comm::World base_world(kRanks, topo::MachineSpec::meluxina());
  const RunResult base = run_workload(base_world);

  for (const Backend& b : kMatrix) {
    apply_backend(b, spmd, workers);

    comm::World no_plan(kRanks, topo::MachineSpec::meluxina());
    EXPECT_EQ(no_plan.fault_injector(), nullptr);
    const RunResult r0 = run_workload(no_plan);

    comm::World empty_plan(kRanks, topo::MachineSpec::meluxina());
    empty_plan.install_fault_plan(FaultPlan{});
    EXPECT_EQ(empty_plan.fault_injector(), nullptr) << b.label;
    const RunResult r1 = run_workload(empty_plan);

    // Neutral plan: the injector and all its hooks run, but every knob is at
    // its identity value (scale 1.0 multiplies exactly in IEEE).
    FaultPlan neutral;
    neutral.slow_ranks.push_back(SlowRankSpec{-1, 1.0});
    comm::World neutral_plan(kRanks, topo::MachineSpec::meluxina());
    neutral_plan.install_fault_plan(neutral);
    ASSERT_NE(neutral_plan.fault_injector(), nullptr) << b.label;
    const RunResult r2 = run_workload(neutral_plan);

    for (const RunResult* r : {&r0, &r1, &r2}) {
      EXPECT_TRUE(bitwise_equal(base.data, r->data)) << b.label;
      EXPECT_EQ(base.stats.msgs_sent, r->stats.msgs_sent) << b.label;
      EXPECT_EQ(base.stats.bytes_sent, r->stats.bytes_sent) << b.label;
      EXPECT_EQ(base.stats.bytes_inter_node, r->stats.bytes_inter_node)
          << b.label;
      EXPECT_DOUBLE_EQ(base.makespan, r->makespan) << b.label;
    }
  }
}

// ---------------------------------------------------------------------------
// Rank kills
// ---------------------------------------------------------------------------

// Kill rank 3 mid-run on every backend/worker combination: World::run must
// surface PeerFailure (never hang, never trip the watchdog), every survivor
// must observe the same failed-rank set, and the injector's report must be
// identical across the whole matrix.
TEST(FaultKill, SurvivorsAgreeOnFailedSetAcrossBackends) {
  EnvGuard spmd("TESSERACT_SPMD");
  EnvGuard workers("TESSERACT_WORKERS");

  FaultPlan plan;
  plan.kills.push_back(KillSpec{3, 40, -1.0});

  for (const Backend& b : kMatrix) {
    apply_backend(b, spmd, workers);
    comm::World world(kRanks, topo::MachineSpec::meluxina());
    world.install_fault_plan(plan);

    std::vector<std::vector<int>> seen(kRanks);
    bool threw = false;
    try {
      world.run([&](comm::Communicator& c) {
        std::vector<float> v(64, 1.0f);
        try {
          for (int it = 0; it < 50; ++it) c.all_reduce(v);
        } catch (const PeerFailure& e) {
          seen[static_cast<std::size_t>(c.rank())] = e.failed_ranks();
          throw;
        }
      });
    } catch (const PeerFailure& e) {
      threw = true;
      EXPECT_EQ(e.failed_ranks(), std::vector<int>{3}) << b.label;
    }
    EXPECT_TRUE(threw) << b.label;

    // Every survivor that observed the failure saw the identical set; the
    // victim (rank 3) observed nothing — it is the failure.
    EXPECT_TRUE(seen[3].empty()) << b.label;
    int observers = 0;
    for (int r = 0; r < kRanks; ++r) {
      if (r == 3) continue;
      if (!seen[static_cast<std::size_t>(r)].empty()) {
        ++observers;
        EXPECT_EQ(seen[static_cast<std::size_t>(r)], std::vector<int>{3})
            << b.label << " rank " << r;
      }
    }
    EXPECT_EQ(observers, kRanks - 1) << b.label;

    ASSERT_NE(world.fault_injector(), nullptr);
    const FaultReport rep = world.fault_injector()->report();
    EXPECT_EQ(rep.kills, 1);
    EXPECT_EQ(rep.dead_ranks, std::vector<int>{3}) << b.label;
  }
}

// Injected kill + tight deadlock watchdog (threads backend): the structured
// PeerFailure must win; the watchdog's blocked-rank dump must never fire.
TEST(FaultKill, ComposesWithThreadsWatchdog) {
  EnvGuard spmd("TESSERACT_SPMD");
  EnvGuard watchdog("TESSERACT_DEADLOCK_MS");
  spmd.set("threads");
  watchdog.set("400");

  FaultPlan plan;
  plan.kills.push_back(KillSpec{1, 10, -1.0});
  comm::World world(4, topo::MachineSpec::meluxina());
  world.install_fault_plan(plan);

  try {
    world.run([&](comm::Communicator& c) {
      std::vector<float> v(32, 2.0f);
      for (int it = 0; it < 50; ++it) c.all_reduce(v);
    });
    FAIL() << "expected PeerFailure";
  } catch (const PeerFailure& e) {
    EXPECT_EQ(e.failed_ranks(), std::vector<int>{1});
  } catch (const std::runtime_error& e) {
    FAIL() << "watchdog dump instead of PeerFailure: " << e.what();
  }
}

// Time-triggered kill: fires when the victim's simulated clock passes the
// threshold, and the trigger is deterministic (same sim schedule every run).
TEST(FaultKill, SimTimeTriggerIsDeterministic) {
  EnvGuard spmd("TESSERACT_SPMD");
  EnvGuard workers("TESSERACT_WORKERS");

  auto run_once = [&](const Backend& b) {
    EnvGuard s("TESSERACT_SPMD");
    EnvGuard w("TESSERACT_WORKERS");
    apply_backend(b, s, w);
    FaultPlan plan;
    plan.kills.push_back(KillSpec{5, -1, 1e-4});
    comm::World world(kRanks, topo::MachineSpec::meluxina());
    world.install_fault_plan(plan);
    try {
      world.run([&](comm::Communicator& c) {
        std::vector<float> v(256, 1.0f);
        for (int it = 0; it < 100; ++it) c.all_reduce(v);
      });
    } catch (const PeerFailure&) {
    }
    return world.fault_injector()->report();
  };

  const FaultReport base = run_once(kMatrix[0]);
  EXPECT_EQ(base.kills, 1);
  EXPECT_EQ(base.dead_ranks, std::vector<int>{5});
  for (const Backend& b : kMatrix) {
    const FaultReport rep = run_once(b);
    EXPECT_EQ(rep.kills, base.kills) << b.label;
    EXPECT_EQ(rep.dead_ranks, base.dead_ranks) << b.label;
  }
}

// ---------------------------------------------------------------------------
// Stragglers and degraded links
// ---------------------------------------------------------------------------

TEST(FaultStraggler, SlowRankInflatesMakespanDeterministically) {
  EnvGuard spmd("TESSERACT_SPMD");
  EnvGuard workers("TESSERACT_WORKERS");
  spmd.clear();
  workers.set("1");
  comm::World base_world(kRanks, topo::MachineSpec::meluxina());
  const RunResult base = run_workload(base_world);

  FaultPlan plan;
  plan.slow_ranks.push_back(SlowRankSpec{0, 2.0});

  double first = -1.0;
  for (const Backend& b : kMatrix) {
    apply_backend(b, spmd, workers);
    comm::World world(kRanks, topo::MachineSpec::meluxina());
    world.install_fault_plan(plan);
    const RunResult r = run_workload(world);
    // Straggling never corrupts data, only time.
    EXPECT_TRUE(bitwise_equal(base.data, r.data)) << b.label;
    EXPECT_EQ(base.stats.bytes_sent, r.stats.bytes_sent) << b.label;
    EXPECT_GT(r.makespan, base.makespan) << b.label;
    if (first < 0) {
      first = r.makespan;
    } else {
      EXPECT_DOUBLE_EQ(first, r.makespan) << b.label;
    }
  }
}

TEST(FaultStraggler, SlowLinkInflatesMakespan) {
  EnvGuard spmd("TESSERACT_SPMD");
  EnvGuard workers("TESSERACT_WORKERS");
  spmd.clear();
  workers.set("1");
  comm::World base_world(kRanks, topo::MachineSpec::meluxina());
  const RunResult base = run_workload(base_world);

  FaultPlan plan;
  plan.slow_links.push_back(SlowLinkSpec{0, -1, 1.0, 4.0});
  comm::World world(kRanks, topo::MachineSpec::meluxina());
  world.install_fault_plan(plan);
  const RunResult r = run_workload(world);
  EXPECT_TRUE(bitwise_equal(base.data, r.data));
  EXPECT_GT(r.makespan, base.makespan);
}

// ---------------------------------------------------------------------------
// Message faults: delay, drop (bounded retransmit), duplicate
// ---------------------------------------------------------------------------

TEST(FaultMessage, SeededDelayIsReproducible) {
  EnvGuard spmd("TESSERACT_SPMD");
  EnvGuard workers("TESSERACT_WORKERS");
  spmd.clear();
  workers.set("1");

  FaultPlan plan;
  plan.seed = 1234;
  plan.delays.push_back(DelaySpec{-1, -1, 1e-5, 2e-5, 0.5, -1});

  auto run_once = [&]() {
    comm::World world(kRanks, topo::MachineSpec::meluxina());
    world.install_fault_plan(plan);
    RunResult r = run_workload(world);
    const FaultReport rep = world.fault_injector()->report();
    return std::make_pair(r, rep);
  };
  const auto [r1, rep1] = run_once();
  const auto [r2, rep2] = run_once();

  EXPECT_GT(rep1.delayed_msgs, 0);
  EXPECT_GT(rep1.injected_delay_seconds, 0.0);
  EXPECT_EQ(rep1.delayed_msgs, rep2.delayed_msgs);
  EXPECT_DOUBLE_EQ(rep1.injected_delay_seconds, rep2.injected_delay_seconds);
  EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
  EXPECT_TRUE(bitwise_equal(r1.data, r2.data));

  // Same plan, different seed: a different subset of messages is hit.
  FaultPlan other = plan;
  other.seed = 99;
  comm::World world(kRanks, topo::MachineSpec::meluxina());
  world.install_fault_plan(other);
  run_workload(world);
  const FaultReport rep3 = world.fault_injector()->report();
  // The jitter draws are continuous, so seed changes always show up in the
  // accumulated delay even if the hit count happens to coincide.
  EXPECT_NE(rep1.injected_delay_seconds, rep3.injected_delay_seconds);
}

TEST(FaultMessage, DropChargesBoundedRetransmitBackoff) {
  EnvGuard spmd("TESSERACT_SPMD");
  EnvGuard workers("TESSERACT_WORKERS");
  spmd.clear();
  workers.set("1");
  comm::World base_world(kRanks, topo::MachineSpec::meluxina());
  const RunResult base = run_workload(base_world);

  FaultPlan plan;
  plan.max_retries = 3;
  plan.drops.push_back(DropSpec{0, 1, /*count=*/2, /*times=*/5, 1e-3});
  comm::World world(kRanks, topo::MachineSpec::meluxina());
  world.install_fault_plan(plan);
  const RunResult r = run_workload(world);
  const FaultReport rep = world.fault_injector()->report();

  // times is clamped to max_retries: 2 messages x 3 retries.
  EXPECT_EQ(rep.dropped_msgs, 6);
  // Backoff per message: 1e-3 * (2^3 - 1) = 7 ms of arrival slip.
  EXPECT_DOUBLE_EQ(rep.injected_delay_seconds, 2 * 7e-3);
  EXPECT_GT(r.makespan, base.makespan);
  EXPECT_TRUE(bitwise_equal(base.data, r.data));  // delivery, not corruption
}

TEST(FaultMessage, DuplicatesAreDiscardedAndHarmless) {
  EnvGuard spmd("TESSERACT_SPMD");
  EnvGuard workers("TESSERACT_WORKERS");
  spmd.clear();
  workers.set("1");
  comm::World base_world(kRanks, topo::MachineSpec::meluxina());
  const RunResult base = run_workload(base_world);

  FaultPlan plan;
  plan.duplicates.push_back(DuplicateSpec{-1, -1, 1.0, -1});

  for (const Backend& b : kMatrix) {
    apply_backend(b, spmd, workers);
    comm::World world(kRanks, topo::MachineSpec::meluxina());
    world.install_fault_plan(plan);
    const RunResult r = run_workload(world);
    const FaultReport rep = world.fault_injector()->report();
    // Every wire message was duplicated, every duplicate was discarded, and
    // the application-level results are untouched.
    EXPECT_GT(rep.duplicated_msgs, 0) << b.label;
    EXPECT_EQ(rep.duplicated_msgs, rep.duplicates_discarded) << b.label;
    EXPECT_TRUE(bitwise_equal(base.data, r.data)) << b.label;
    // The spurious retransmissions do cost wire bytes and NIC time.
    EXPECT_EQ(r.stats.msgs_sent, 2 * base.stats.msgs_sent) << b.label;
    EXPECT_GE(r.makespan, base.makespan) << b.label;
  }
}

// ---------------------------------------------------------------------------
// Receive timeouts (threads backend: timed waits need a real clock)
// ---------------------------------------------------------------------------

TEST(FaultTimeout, BlockedRecvTimesOutOnThreadsBackend) {
  EnvGuard spmd("TESSERACT_SPMD");
  EnvGuard watchdog("TESSERACT_DEADLOCK_MS");
  spmd.set("threads");
  watchdog.set("30000");  // far beyond the timeout: RecvTimeout must win

  FaultPlan plan;
  plan.recv_timeout_ms = 200;
  comm::World world(2);
  world.install_fault_plan(plan);
  try {
    world.run([&](comm::Communicator& c) {
      if (c.rank() == 1) {
        c.recv(0, /*tag=*/7);  // rank 0 never sends
      }
    });
    FAIL() << "expected RecvTimeout";
  } catch (const RecvTimeout& e) {
    EXPECT_EQ(e.src(), 0);
  }
}

// Regression: install_fault_plan must reset the mailbox receive timeouts on
// EVERY install — including an empty plan. Before the fix, installing a new
// plan with recv_timeout_ms == 0 (or clearing faults between back-to-back
// runs on one World) leaked the previous plan's timeout into later runs.
TEST(FaultTimeout, ReinstallResetsMailboxRecvTimeouts) {
  comm::World world(3);

  FaultPlan timed;
  timed.recv_timeout_ms = 750;
  world.install_fault_plan(timed);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(world.mailbox(r).recv_timeout_ms(), 750) << r;
  }

  // A non-empty follow-up plan with no timeout must clear it, not keep 750.
  FaultPlan slow;
  slow.slow_ranks.push_back({/*rank=*/1, /*scale=*/2.0});
  world.install_fault_plan(slow);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(world.mailbox(r).recv_timeout_ms(), 0) << r;
  }

  world.install_fault_plan(timed);
  // An EMPTY plan (the "clear faults" idiom) must also reset the timeout,
  // even though it installs nothing else.
  world.install_fault_plan(FaultPlan{});
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(world.mailbox(r).recv_timeout_ms(), 0) << r;
  }
}

// Env-driven install: a World constructed while TESSERACT_FAULT_* is set
// picks the plan up with no code change.
TEST(FaultEnv, WorldConstructorReadsEnvironment) {
  EnvGuard slow("TESSERACT_FAULT_SLOW_RANK");
  EnvGuard scale("TESSERACT_FAULT_SLOW_SCALE");
  slow.set("0");
  scale.set("4.0");
  comm::World world(2, topo::MachineSpec::meluxina());
  ASSERT_NE(world.fault_injector(), nullptr);
  EXPECT_DOUBLE_EQ(world.clock(0).slowdown(), 4.0);
  EXPECT_DOUBLE_EQ(world.clock(1).slowdown(), 1.0);
}

}  // namespace
}  // namespace tsr::fault
