// Live telemetry plane: online sampler determinism across scheduler
// backends, TIMELINE stream format, per-rank tensor accounting, the
// expectation monitor's drift taxonomy, fault-plan fingerprints, and the run
// report's embedded timeline section.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "fault/fault.hpp"
#include "obs/expect.hpp"
#include "obs/json.hpp"
#include "obs/live.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "pdgemm/block.hpp"
#include "perf/cost_model.hpp"
#include "perf/export.hpp"
#include "perf/run_report.hpp"
#include "perf/trace.hpp"
#include "tensor/tensor.hpp"

namespace tsr {
namespace {

// Scoped environment override (same idiom as test_runtime.cpp): the runtime
// re-reads TESSERACT_WORKERS / TESSERACT_SPMD on every run, so flipping the
// scheduler backend between World::run calls in one process is supported.
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    if (const char* v = std::getenv(name)) {
      had_ = true;
      old_ = v;
    }
  }
  ~EnvGuard() {
    if (had_) {
      setenv(name_, old_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }
  void set(const std::string& value) { setenv(name_, value.c_str(), 1); }
  void clear() { unsetenv(name_); }

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

// Small Tesseract [2,2,2] phantom replay: 8 ranks, finishes in well under a
// second of wall time, covers compute charges, collectives and waits.
const perf::LayerDims kDims{4, 8, 64, 4};
constexpr int kLayers = 2;

void phantom_workload(comm::Communicator& c) {
  pdg::TesseractComms tc = pdg::TesseractComms::create(c, 2, 2);
  for (int l = 0; l < kLayers; ++l) {
    perf::phantom_tesseract_forward(tc, kDims);
    perf::phantom_tesseract_backward(tc, kDims);
  }
}

double clean_makespan() {
  static const double m = [] {
    comm::World world(8, topo::MachineSpec::meluxina());
    world.run(phantom_workload);
    return world.max_sim_time();
  }();
  return m;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Runs the phantom workload with a live sampler streaming to `path`;
// returns the file contents.
std::string run_with_timeline(const std::string& path, double interval) {
  comm::World world(8, topo::MachineSpec::meluxina());
  world.enable_metrics();
  obs::LiveConfig cfg;
  cfg.interval = interval;
  cfg.label = "test";
  cfg.path = path;
  world.enable_live(cfg);
  world.run(phantom_workload);
  world.finish_live();
  return slurp(path);
}

TEST(LiveSampler, StreamsWellFormedJsonlWithHeaderAndFinal) {
  const double interval = clean_makespan() / 24.0;
  const std::string text =
      run_with_timeline("TIMELINE_test_format.json", interval);
  std::istringstream in(text);
  std::string line;
  int windows = 0;
  bool saw_header = false, saw_final = false;
  int line_no = 0;
  while (std::getline(in, line)) {
    std::string err;
    const obs::JsonValue v = obs::json_parse(line, &err);
    ASSERT_EQ(err, "") << "line " << line_no << ": " << line;
    if (line_no == 0) {
      saw_header = true;
      ASSERT_NE(v.find("kind"), nullptr);
      EXPECT_EQ(v.find("kind")->as_string(), "timeline");
      EXPECT_EQ(v.find("schema_version")->as_int(), obs::kTimelineSchemaVersion);
      EXPECT_EQ(v.find("nranks")->as_int(), 8);
      EXPECT_EQ(v.find("fault_plan")->as_string(), "none");
      // Host identity must NOT leak into the stream: same-seed timelines are
      // byte-compared across scheduler backends.
      EXPECT_EQ(v.find("backend"), nullptr);
      EXPECT_EQ(v.find("workers"), nullptr);
    } else if (const obs::JsonValue* w = v.find("w")) {
      windows += 1;
      const obs::JsonValue* ranks = v.find("ranks");
      ASSERT_NE(ranks, nullptr);
      ASSERT_EQ(ranks->size(), 8u);
      // Cumulative counters are monotone in the window index, so per-window
      // deltas never go negative (wire_s included: per-span accounting).
      (void)w;
    } else if (v.find("final") != nullptr) {
      saw_final = true;
      const obs::JsonValue* f = v.find("final");
      EXPECT_GT(f->find("windows")->as_int(), 0);
      EXPECT_GT(f->find("samples")->as_int(), 0);
      EXPECT_GT(f->find("makespan")->as_double(), 0.0);
    }
    line_no += 1;
  }
  EXPECT_TRUE(saw_header);
  EXPECT_TRUE(saw_final);
  EXPECT_GE(windows, 16);
}

TEST(LiveSampler, CumulativeCountersAreMonotone) {
  const double interval = clean_makespan() / 24.0;
  const std::string text =
      run_with_timeline("TIMELINE_test_monotone.json", interval);
  std::istringstream in(text);
  std::string line, err;
  std::vector<obs::JsonValue> prev;
  while (std::getline(in, line)) {
    const obs::JsonValue v = obs::json_parse(line, &err);
    ASSERT_EQ(err, "");
    if (v.find("w") == nullptr) continue;
    const auto& ranks = v.find("ranks")->items();
    if (!prev.empty()) {
      for (std::size_t r = 0; r < ranks.size(); ++r) {
        for (const char* key : {"ops", "msgs", "bytes"}) {
          EXPECT_GE(ranks[r].find(key)->as_int(), prev[r].find(key)->as_int());
        }
        for (const char* key : {"t", "compute_s", "wire_s", "wait_s"}) {
          EXPECT_GE(ranks[r].find(key)->as_double(),
                    prev[r].find(key)->as_double());
        }
      }
    }
    prev = ranks;
  }
  ASSERT_FALSE(prev.empty());
}

TEST(LiveSampler, TimelineBitIdenticalAcrossBackends) {
  const double interval = clean_makespan() / 24.0;
  EnvGuard workers("TESSERACT_WORKERS");
  EnvGuard backend("TESSERACT_SPMD");

  workers.set("1");
  backend.clear();
  const std::string w1 =
      run_with_timeline("TIMELINE_test_w1.json", interval);
  workers.set("4");
  const std::string w4 =
      run_with_timeline("TIMELINE_test_w4.json", interval);
  workers.clear();
  backend.set("threads");
  const std::string threads =
      run_with_timeline("TIMELINE_test_threads.json", interval);

  ASSERT_FALSE(w1.empty());
  EXPECT_EQ(w1, w4) << "fibers W=1 vs W=4 timelines differ";
  EXPECT_EQ(w1, threads) << "fibers vs threads timelines differ";
}

TEST(LiveSampler, RecordsCountersIntoRegistry) {
  comm::World world(8, topo::MachineSpec::meluxina());
  world.enable_metrics();
  obs::LiveConfig cfg;
  cfg.interval = clean_makespan() / 24.0;
  world.enable_live(cfg);  // no path: ring-only sampling
  obs::ExpectationMonitor monitor(obs::ExpectationProfile{},
                                  obs::DriftConfig{}, world.size());
  world.live()->set_monitor(&monitor);
  world.run(phantom_workload);
  world.finish_live();

  const obs::Snapshot snap = world.metrics().snapshot();
  EXPECT_GT(snap.counters.at("runtime.live.samples"), 0);
  EXPECT_GT(snap.counters.at("runtime.live.windows_flushed"), 0);
  EXPECT_EQ(snap.counters.at("obs.expect.drift_events"), 0);
  EXPECT_EQ(snap.counters.at("obs.expect.stall_flags"), 0);
  EXPECT_GT(snap.counters.at("obs.expect.windows_checked"), 0);
  EXPECT_FALSE(world.live()->ring().empty());
  EXPECT_EQ(world.live()->windows_flushed(),
            snap.counters.at("runtime.live.windows_flushed"));
}

TEST(LiveSampler, RingStaysBounded) {
  comm::World world(8, topo::MachineSpec::meluxina());
  obs::LiveConfig cfg;
  cfg.interval = clean_makespan() / 64.0;
  cfg.ring_windows = 4;
  world.enable_live(cfg);
  world.run(phantom_workload);
  world.finish_live();
  EXPECT_LE(world.live()->ring().size(), 4u);
  EXPECT_GT(world.live()->ring_evictions(), 0);
  // Ring keeps the newest windows: the last ring entry is the last flushed.
  const auto ring = world.live()->ring();
  EXPECT_EQ(ring.back().window + 1,
            static_cast<int>(world.live()->windows_flushed()));
}

TEST(ExpectationMonitor, FlagsInjectedStragglerOnTheRightRank) {
  comm::World world(8, topo::MachineSpec::meluxina());
  fault::FaultPlan plan;
  plan.slow_ranks.push_back({3, 1.5});
  world.install_fault_plan(plan);
  obs::LiveConfig cfg;
  cfg.interval = clean_makespan() / 32.0;
  world.enable_live(cfg);
  obs::ExpectationMonitor monitor(obs::ExpectationProfile{},
                                  obs::DriftConfig{}, world.size());
  world.live()->set_monitor(&monitor);
  world.run(phantom_workload);
  world.finish_live();

  const std::vector<obs::DriftEvent> events = world.live()->drift_events();
  int slowdowns = 0;
  for (const obs::DriftEvent& e : events) {
    if (e.type != obs::DriftEvent::Type::RankSlowdown) continue;
    slowdowns += 1;
    EXPECT_EQ(e.rank, 3) << "slowdown flagged on the wrong rank";
    // The +50% straggler converges to factor ~1.5 over the healthy median;
    // at flag time the ratio is at least the 1.3 confirmation threshold.
    EXPECT_GE(e.factor, 1.3);
    EXPECT_LE(e.factor, 1.8);
    // Bounded detection latency: confirmed within the first half of the run.
    EXPECT_LE(e.window, 16);
  }
  EXPECT_EQ(slowdowns, 1) << "straggler must be flagged exactly once";
}

TEST(ExpectationMonitor, SilentOnCleanRun) {
  comm::World world(8, topo::MachineSpec::meluxina());
  obs::LiveConfig cfg;
  cfg.interval = clean_makespan() / 32.0;
  world.enable_live(cfg);
  obs::ExpectationMonitor monitor(obs::ExpectationProfile{},
                                  obs::DriftConfig{}, world.size());
  world.live()->set_monitor(&monitor);
  world.run(phantom_workload);
  world.finish_live();
  EXPECT_TRUE(world.live()->drift_events().empty());
}

TEST(ExpectationMonitor, CostModelProfileMatchesItsOwnReplay) {
  // The profile predicts the very workload we then instrument, so the
  // profile-relative checks (behind_expectation, link_degraded) must stay
  // silent too — the cost model agreeing with itself is the base case of
  // the DistIR premise.
  const perf::EvalConfig eval_cfg{.scheme = perf::Scheme::Tesseract,
                                  .q = 2,
                                  .d = 2,
                                  .dims = kDims,
                                  .layers = kLayers};
  const obs::ExpectationProfile profile =
      perf::expectation_from_cost_model(eval_cfg);
  ASSERT_TRUE(profile.valid());
  EXPECT_GT(profile.ops_per_second, 0.0);
  EXPECT_GT(profile.busy_fraction, 0.0);
  EXPECT_LE(profile.busy_fraction + profile.wait_fraction, 1.0 + 1e-9);

  comm::World world(8, topo::MachineSpec::meluxina());
  obs::LiveConfig cfg;
  cfg.interval = profile.makespan / 32.0;
  world.enable_live(cfg);
  obs::ExpectationMonitor monitor(profile, obs::DriftConfig{}, world.size());
  world.live()->set_monitor(&monitor);
  world.run(phantom_workload);
  world.finish_live();
  EXPECT_TRUE(world.live()->drift_events().empty());
}

// ---- Monitor unit tests on synthetic windows --------------------------------

obs::WindowSnapshot synthetic_window(int w, int nranks) {
  obs::WindowSnapshot snap;
  snap.window = w;
  snap.ranks.resize(static_cast<std::size_t>(nranks));
  return snap;
}

TEST(ExpectationMonitor, StallDetectorFiresAfterConfiguredHorizon) {
  obs::DriftConfig cfg;
  obs::ExpectationMonitor monitor(obs::ExpectationProfile{}, cfg, 4);
  const double interval = 1e-3;
  std::vector<obs::DriftEvent> all;
  for (int w = 0; w < 16; ++w) {
    obs::WindowSnapshot snap = synthetic_window(w, 4);
    for (int r = 0; r < 4; ++r) {
      obs::RankSample& s = snap.ranks[static_cast<std::size_t>(r)];
      s.t = (w + 1) * interval;
      // Rank 2's counters freeze after window 2; peers keep completing ops.
      const int effective = (r == 2 && w > 2) ? 2 : w;
      s.ops = 10 * (effective + 1);
      s.compute_s = 1e-4 * (w + 1);  // equal busy: no slowdown suspicion
    }
    for (obs::DriftEvent& e : monitor.on_window(snap, interval)) {
      all.push_back(e);
    }
  }
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].type, obs::DriftEvent::Type::RankStalled);
  EXPECT_EQ(all[0].rank, 2);
  // Zero-progress windows start at w=3; the flag lands stall_windows later.
  EXPECT_EQ(all[0].window, 2 + cfg.stall_windows);
  EXPECT_EQ(monitor.stall_flags(), 1);
}

TEST(ExpectationMonitor, ReportsDeadRankOnce) {
  obs::ExpectationMonitor monitor(obs::ExpectationProfile{}, obs::DriftConfig{},
                                  2);
  std::vector<obs::DriftEvent> all;
  for (int w = 0; w < 4; ++w) {
    obs::WindowSnapshot snap = synthetic_window(w, 2);
    for (int r = 0; r < 2; ++r) {
      snap.ranks[static_cast<std::size_t>(r)].ops = 5 * (w + 1);
      snap.ranks[static_cast<std::size_t>(r)].compute_s = 1e-4 * (w + 1);
    }
    if (w >= 1) snap.ranks[1].dead = true;
    for (obs::DriftEvent& e : monitor.on_window(snap, 1e-3)) all.push_back(e);
  }
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].type, obs::DriftEvent::Type::RankDead);
  EXPECT_EQ(all[0].rank, 1);
  EXPECT_EQ(all[0].window, 1);
}

TEST(ExpectationMonitor, BehindExpectationNeedsAValidProfile) {
  const double interval = 1e-3;
  obs::DriftConfig cfg;
  // Frozen cluster: all ranks stop completing ops. Without a profile this is
  // indistinguishable from a quiet phase; with one, it is a confirmed lag.
  const auto run = [&](obs::ExpectationProfile profile) {
    obs::ExpectationMonitor monitor(profile, cfg, 4);
    std::vector<obs::DriftEvent> all;
    for (int w = 0; w < 6; ++w) {
      obs::WindowSnapshot snap = synthetic_window(w, 4);
      for (int r = 0; r < 4; ++r) {
        snap.ranks[static_cast<std::size_t>(r)].ops = 1;  // frozen cumulative
        snap.ranks[static_cast<std::size_t>(r)].compute_s = 1e-5;
      }
      for (obs::DriftEvent& e : monitor.on_window(snap, interval)) {
        all.push_back(e);
      }
    }
    return all;
  };

  EXPECT_TRUE(run(obs::ExpectationProfile{}).empty());

  obs::ExpectationProfile profile;
  profile.makespan = 1.0;
  profile.ops_per_second = 10000.0;  // expects 10 ops per window; sees 4 total
  const std::vector<obs::DriftEvent> events = run(profile);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, obs::DriftEvent::Type::BehindExpectation);
  EXPECT_EQ(events[0].rank, -1);
  EXPECT_EQ(events[0].window, cfg.confirm_windows - 1);
}

TEST(ExpectationMonitor, LinkDegradedWhenWaitInflatesWithoutAStraggler) {
  obs::ExpectationProfile profile;
  profile.makespan = 1.0;
  profile.ops_per_second = 4000.0;
  profile.wait_fraction = 0.01;
  obs::ExpectationMonitor monitor(profile, obs::DriftConfig{}, 4);
  const double interval = 1e-3;
  std::vector<obs::DriftEvent> all;
  for (int w = 0; w < 4; ++w) {
    obs::WindowSnapshot snap = synthetic_window(w, 4);
    const double t_end = (w + 1) * interval;
    for (int r = 0; r < 4; ++r) {
      obs::RankSample& s = snap.ranks[static_cast<std::size_t>(r)];
      s.ops = static_cast<std::int64_t>(1 + w) * 1;  // on-rate: 4/window
      s.compute_s = 1e-4 * (w + 1);                  // equal busy, no straggler
      s.wait_s = 0.5 * t_end;                        // half the window blocked
    }
    for (obs::DriftEvent& e : monitor.on_window(snap, interval)) {
      all.push_back(e);
    }
  }
  bool saw_link = false;
  for (const obs::DriftEvent& e : all) {
    if (e.type == obs::DriftEvent::Type::LinkDegraded) {
      saw_link = true;
      EXPECT_EQ(e.rank, -1);
      EXPECT_GT(e.factor, 1.0);
    }
    EXPECT_NE(e.type, obs::DriftEvent::Type::RankSlowdown);
  }
  EXPECT_TRUE(saw_link);
}

// ---- Per-rank tensor accounting ---------------------------------------------

TEST(RankMemory, PerRankLiveBytesTrackOwningRank) {
  comm::World world(4, topo::MachineSpec::zero_cost());
  world.run([&](comm::Communicator& c) {
    const int r = c.rank();
    const std::int64_t before = obs::rank_live_tensor_bytes(r);
    {
      Tensor t({64, (std::int64_t)(r + 1)});
      const std::int64_t held = obs::rank_live_tensor_bytes(r);
      EXPECT_EQ(held - before,
                static_cast<std::int64_t>(t.numel() * sizeof(float)));
    }
    EXPECT_EQ(obs::rank_live_tensor_bytes(r), before);
  });
  EXPECT_EQ(obs::rank_live_tensor_bytes(-1), 0);
  EXPECT_EQ(obs::rank_live_tensor_bytes(1 << 20), 0);
}

// ---- Fault-plan fingerprints ------------------------------------------------

TEST(FaultFingerprint, EmptyPlanIsNoneAndPlansAreStable) {
  const fault::FaultPlan empty;
  EXPECT_EQ(fault::plan_fingerprint(empty), "none");

  fault::FaultPlan a;
  a.slow_ranks.push_back({3, 1.5});
  fault::FaultPlan b;
  b.slow_ranks.push_back({3, 1.5});
  fault::FaultPlan c;
  c.slow_ranks.push_back({2, 1.5});
  EXPECT_EQ(fault::plan_fingerprint(a), fault::plan_fingerprint(b));
  EXPECT_NE(fault::plan_fingerprint(a), fault::plan_fingerprint(c));
  EXPECT_NE(fault::plan_fingerprint(a), "none");
  EXPECT_EQ(fault::plan_fingerprint(a).size(), 16u);  // FNV-1a 64 hex
}

TEST(FaultFingerprint, TimelineHeaderCarriesThePlan) {
  fault::FaultPlan plan;
  plan.slow_ranks.push_back({1, 2.0});
  comm::World world(8, topo::MachineSpec::meluxina());
  world.install_fault_plan(plan);
  obs::LiveConfig cfg;
  cfg.interval = clean_makespan() / 16.0;
  cfg.path = "TIMELINE_test_fp.json";
  world.enable_live(cfg);
  world.run(phantom_workload);
  world.finish_live();

  std::ifstream in("TIMELINE_test_fp.json");
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  std::string err;
  const obs::JsonValue h = obs::json_parse(header, &err);
  ASSERT_EQ(err, "");
  EXPECT_EQ(h.find("fault_plan")->as_string(), fault::plan_fingerprint(plan));
}

TEST(FaultFingerprint, StampedIntoReportEnvelope) {
  fault::FaultPlan plan;
  plan.slow_ranks.push_back({0, 3.0});
  comm::World world(2, topo::MachineSpec::zero_cost());
  world.install_fault_plan(plan);  // makes the plan the process-active one
  obs::JsonValue doc = obs::JsonValue::object();
  perf::stamp_envelope(doc, "test");
  ASSERT_NE(doc.find("fault_plan"), nullptr);
  EXPECT_EQ(doc.find("fault_plan")->as_string(), fault::plan_fingerprint(plan));
}

// ---- Run-report timeline section --------------------------------------------

TEST(RunReportTimeline, EmbedsRingWindowsInSharedSchema) {
  comm::World world(8, topo::MachineSpec::meluxina());
  world.enable_tracing();
  world.enable_metrics();
  obs::LiveConfig cfg;
  cfg.interval = clean_makespan() / 16.0;
  world.enable_live(cfg);
  world.run(phantom_workload);
  world.finish_live();

  const perf::RunReport rep = perf::build_run_report(world, "live_test");
  EXPECT_GT(rep.timeline_interval, 0.0);
  EXPECT_GT(rep.timeline_windows_flushed, 0);
  ASSERT_FALSE(rep.timeline.empty());
  EXPECT_EQ(rep.timeline.front().ranks.size(), 8u);

  const obs::JsonValue doc = rep.to_json();
  const obs::JsonValue* tl = doc.find("timeline");
  ASSERT_NE(tl, nullptr);
  EXPECT_EQ(tl->find("schema_version")->as_int(), obs::kTimelineSchemaVersion);
  const obs::JsonValue* windows = tl->find("windows");
  ASSERT_NE(windows, nullptr);
  ASSERT_GT(windows->size(), 0u);
  const obs::JsonValue& w0 = windows->items()[0];
  ASSERT_NE(w0.find("ranks"), nullptr);
  EXPECT_EQ(w0.find("ranks")->size(), 8u);

  // Two same-seed reports (same backend state) diff clean, timeline included.
  comm::World world2(8, topo::MachineSpec::meluxina());
  world2.enable_tracing();
  world2.enable_metrics();
  world2.enable_live(cfg);
  world2.run(phantom_workload);
  world2.finish_live();
  const obs::JsonValue doc2 =
      perf::build_run_report(world2, "live_test").to_json();
  const perf::ReportDiffResult diff = perf::diff_run_reports(doc, doc2);
  EXPECT_TRUE(diff.clean()) << diff.to_string();
}

}  // namespace
}  // namespace tsr
