// Virtual cluster runtime: barrier semantics, SPMD execution, exception
// propagation, simulated clocks, and the multi-worker fiber scheduler
// (worker-count determinism, cross-worker wakes, deadlock detection on both
// backends).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "comm/communicator.hpp"
#include "parallel/context.hpp"
#include "parallel/dist.hpp"
#include "parallel/tesseract_transformer.hpp"
#include "runtime/barrier.hpp"
#include "runtime/cluster.hpp"
#include "runtime/fiber.hpp"
#include "runtime/sim_clock.hpp"
#include "runtime/worker_pool.hpp"
#include "tensor/init.hpp"

namespace tsr::rt {
namespace {

// Scoped environment override: sets (or clears) a variable for one test and
// restores the previous value on destruction. The runtime re-reads
// TESSERACT_WORKERS / TESSERACT_SPMD / TESSERACT_DEADLOCK_MS on every run,
// so changing them between World::run calls inside one process is supported.
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    if (const char* v = std::getenv(name)) {
      had_ = true;
      old_ = v;
    }
  }
  ~EnvGuard() {
    if (had_) {
      setenv(name_, old_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }
  void set(const std::string& value) { setenv(name_, value.c_str(), 1); }
  void clear() { unsetenv(name_); }

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

TEST(Barrier, RejectsNonPositiveCount) {
  EXPECT_THROW(Barrier(0), std::invalid_argument);
  EXPECT_THROW(Barrier(-3), std::invalid_argument);
}

TEST(Barrier, SingleThreadPassesThrough) {
  Barrier b(1);
  b.arrive_and_wait();
  b.arrive_and_wait();  // reusable
}

TEST(Barrier, SynchronizesPhases) {
  constexpr int kThreads = 8;
  constexpr int kPhases = 50;
  Barrier barrier(kThreads);
  std::atomic<int> phase_counter{0};
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int p = 0; p < kPhases; ++p) {
        phase_counter.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier, all kThreads arrivals of this phase happened.
        if (phase_counter.load() < kThreads * (p + 1)) ok = false;
        barrier.arrive_and_wait();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(phase_counter.load(), kThreads * kPhases);
}

TEST(RunSpmd, RunsEveryRankExactlyOnce) {
  std::vector<std::atomic<int>> counts(16);
  run_spmd(16, [&](int r) { counts[static_cast<std::size_t>(r)]++; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(RunSpmd, SingleRankFastPath) {
  int called = 0;
  run_spmd(1, [&](int r) {
    EXPECT_EQ(r, 0);
    ++called;
  });
  EXPECT_EQ(called, 1);
}

TEST(RunSpmd, RejectsNonPositiveRanks) {
  EXPECT_THROW(run_spmd(0, [](int) {}), std::invalid_argument);
}

TEST(RunSpmd, PropagatesException) {
  EXPECT_THROW(
      run_spmd(4,
               [&](int r) {
                 if (r == 2) throw std::runtime_error("rank 2 boom");
               }),
      std::runtime_error);
}

TEST(RunSpmd, JoinsAllRanksEvenOnFailure) {
  std::atomic<int> finished{0};
  try {
    run_spmd(6, [&](int r) {
      if (r == 0) throw std::logic_error("early");
      finished.fetch_add(1);
    });
    FAIL() << "expected throw";
  } catch (const std::logic_error&) {
  }
  EXPECT_EQ(finished.load(), 5);
}

TEST(SimClock, AdvanceAccumulates) {
  SimClock c;
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  c.advance(1.5);
  c.advance(0.5);
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
}

TEST(SimClock, NegativeAdvanceIgnored) {
  SimClock c;
  c.advance(1.0);
  c.advance(-5.0);
  EXPECT_DOUBLE_EQ(c.now(), 1.0);
}

TEST(SimClock, AdvanceToIsMonotone) {
  SimClock c;
  c.advance_to(3.0);
  EXPECT_DOUBLE_EQ(c.now(), 3.0);
  c.advance_to(1.0);  // message from the past does not rewind the clock
  EXPECT_DOUBLE_EQ(c.now(), 3.0);
}

TEST(SimClock, Reset) {
  SimClock c;
  c.advance(9.0);
  c.reset();
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  c.reset(2.0);
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
}

// ---- multi-worker scheduler ----------------------------------------------

TEST(Scheduler, BackendSelection) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  // Sanitizers cannot track swapcontext stacks; the fiber backend must turn
  // itself off so run_spmd falls back to OS threads.
  EXPECT_FALSE(fibers_enabled());
#else
  {
    EnvGuard spmd("TESSERACT_SPMD");
    spmd.clear();
    EXPECT_TRUE(fibers_enabled());
    spmd.set("threads");
    EXPECT_FALSE(fibers_enabled());
  }
#endif
}

TEST(Scheduler, ConfiguredWorkersReadsEnv) {
  EnvGuard workers("TESSERACT_WORKERS");
  workers.set("3");
  EXPECT_EQ(configured_workers(), 3);
  workers.set("999");
  EXPECT_EQ(configured_workers(), 64);  // clamped
  workers.set("1");
  EXPECT_EQ(configured_workers(), 1);
}

TEST(Scheduler, MultiWorkerRunsEveryRankExactlyOnce) {
  EnvGuard workers("TESSERACT_WORKERS");
  for (const char* w : {"2", "4", "7"}) {
    workers.set(w);
    std::vector<std::atomic<int>> counts(16);
    run_spmd(16, [&](int r) { counts[static_cast<std::size_t>(r)]++; });
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
  }
}

TEST(Scheduler, MultiWorkerPropagatesLowestRankError) {
  EnvGuard workers("TESSERACT_WORKERS");
  workers.set("4");
  EXPECT_THROW(
      run_spmd(8,
               [&](int r) {
                 if (r == 5) throw std::runtime_error("rank 5 boom");
               }),
      std::runtime_error);
}

// Many ring shifts across 8 ranks sharded over 4 workers: every shift wakes
// a receiver on a different worker thread, driving the atomic fiber-state
// handoff path hard. The payload rotation proves no message was lost or
// misrouted; the stats delta proves the cross-worker path actually ran.
TEST(Scheduler, CrossWorkerWakeStress) {
  EnvGuard workers("TESSERACT_WORKERS");
  workers.set("4");
  const int g = 8;
  const int rounds = 200;
  const SchedulerStats before = scheduler_stats();
  comm::World world(g);
  world.run([&](comm::Communicator& c) {
    std::vector<float> buf{static_cast<float>(c.rank())};
    std::vector<float> in(1);
    for (int i = 0; i < rounds; ++i) {
      const int dst = (c.rank() + 1) % g;
      const int src = (c.rank() + g - 1) % g;
      c.sendrecv(dst, buf, src, in, static_cast<std::uint64_t>(i));
      buf = in;
    }
    // After g*k full rotations the value returns home; 200 = 25 * 8.
    EXPECT_EQ(buf[0], static_cast<float>(c.rank()));
  });
  const SchedulerStats after = scheduler_stats();
  if (fibers_enabled()) {
    EXPECT_GT(after.resumes, before.resumes);
    EXPECT_GT(after.cross_wakes, before.cross_wakes);
  }
}

// All ranks receive from a sender that never sends: on the fiber backend the
// global quiescence check across workers must cancel the run and raise
// instead of hanging; under sanitizers (threads fallback) the watchdog set
// here catches the same cycle. Either way the test terminates with a throw.
TEST(Scheduler, DeadlockDetectedAcrossWorkers) {
  EnvGuard workers("TESSERACT_WORKERS");
  EnvGuard watchdog("TESSERACT_DEADLOCK_MS");
  workers.set("2");
  watchdog.set("500");
  comm::World world(4);
  EXPECT_THROW(world.run([&](comm::Communicator& c) {
                 (void)c.recv((c.rank() + 1) % 4, 77);  // never sent
               }),
               std::runtime_error);
}

TEST(Watchdog, TimeoutParsesEnv) {
  EnvGuard watchdog("TESSERACT_DEADLOCK_MS");
  watchdog.clear();
  EXPECT_EQ(deadlock_timeout_ms(), 0);  // off by default
  watchdog.set("250");
  EXPECT_EQ(deadlock_timeout_ms(), 250);
  watchdog.set("0");
  EXPECT_EQ(deadlock_timeout_ms(), 0);
}

// Threads backend under the watchdog: a true all-ranks-blocked cycle throws
// a diagnosis naming every blocked rank instead of hanging CI forever.
TEST(Watchdog, ThreadsBackendDeadlockThrows) {
  EnvGuard spmd("TESSERACT_SPMD");
  EnvGuard watchdog("TESSERACT_DEADLOCK_MS");
  spmd.set("threads");
  watchdog.set("300");
  comm::World world(3);
  try {
    world.run([&](comm::Communicator& c) {
      (void)c.recv((c.rank() + 1) % 3, 99);  // never sent
    });
    FAIL() << "expected deadlock throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    const bool watchdog_report =
        what.find("deadlock watchdog") != std::string::npos;
    const bool poison_unwind =
        what.find("Mailbox poisoned") != std::string::npos;
    EXPECT_TRUE(watchdog_report || poison_unwind) << what;
    if (watchdog_report) {
      EXPECT_NE(what.find("blocked in recv"), std::string::npos) << what;
    }
  }
}

// A healthy run under a tight watchdog must NOT trip it: epochs advance on
// every completed pop, so progress resets the verdict window.
TEST(Watchdog, NoFalsePositiveOnProgress) {
  EnvGuard spmd("TESSERACT_SPMD");
  EnvGuard watchdog("TESSERACT_DEADLOCK_MS");
  spmd.set("threads");
  watchdog.set("200");
  comm::World world(4);
  world.run([&](comm::Communicator& c) {
    std::vector<float> v{1.0f};
    for (int i = 0; i < 50; ++i) c.all_reduce(v);
    EXPECT_EQ(v[0], static_cast<float>(std::pow(4.0, 50)));
  });
}

// One full Tesseract [2,2,2] training step (forward + backward through a
// transformer layer on 8 ranks). Returns the float bits of the collected
// output and input gradient from rank 0.
struct StepResult {
  std::vector<float> y;
  std::vector<float> dx;
};

StepResult tesseract_step() {
  const std::int64_t b = 4, s = 2, h = 16, heads = 4;
  Rng data_rng(7);
  Tensor x = random_normal({b, s, h}, data_rng);
  Tensor dy = random_normal({b, s, h}, data_rng);
  StepResult out;
  comm::World world(8);
  world.run([&](comm::Communicator& c) {
    par::TesseractContext ctx(c, 2, 2);
    Rng wrng(42);
    par::TesseractTransformerLayer layer(ctx, h, heads, wrng);
    Tensor yl = layer.forward(par::distribute_activation(ctx.comms(), x));
    Tensor y = par::collect_activation(ctx.comms(), yl, b, s, h);
    layer.zero_grad();
    Tensor dxl = layer.backward(par::distribute_activation(ctx.comms(), dy));
    Tensor dx = par::collect_activation(ctx.comms(), dxl, b, s, h);
    if (c.rank() == 0) {
      out.y.assign(y.data(), y.data() + y.numel());
      out.dx.assign(dx.data(), dx.data() + dx.numel());
    }
  });
  return out;
}

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// The SPMD determinism contract: scheduling is an implementation detail, so
// the same step must produce byte-identical tensors for every worker count
// and for the OS-thread backend.
TEST(Determinism, TesseractStepInvariantAcrossWorkersAndBackends) {
  EnvGuard workers("TESSERACT_WORKERS");
  EnvGuard spmd("TESSERACT_SPMD");
  spmd.clear();
  workers.set("1");
  const StepResult base = tesseract_step();
  ASSERT_FALSE(base.y.empty());
  ASSERT_FALSE(base.dx.empty());
  for (const char* w : {"2", "4"}) {
    workers.set(w);
    const StepResult r = tesseract_step();
    EXPECT_TRUE(bits_equal(r.y, base.y)) << "y differs at W=" << w;
    EXPECT_TRUE(bits_equal(r.dx, base.dx)) << "dx differs at W=" << w;
  }
  spmd.set("threads");
  for (const char* w : {"1", "4"}) {
    workers.set(w);
    const StepResult r = tesseract_step();
    EXPECT_TRUE(bits_equal(r.y, base.y)) << "y differs on threads W=" << w;
    EXPECT_TRUE(bits_equal(r.dx, base.dx)) << "dx differs on threads W=" << w;
  }
}

// Nested worlds (a rank opening an inner cluster) must stay on the worker
// thread of the outer fiber and still complete under multi-worker sharding.
TEST(Scheduler, NestedWorldInsideFiber) {
  EnvGuard workers("TESSERACT_WORKERS");
  workers.set("4");
  std::atomic<int> inner_total{0};
  run_spmd(4, [&](int) {
    run_spmd(2, [&](int) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 8);
}

TEST(WorkerPool, ParallelForRunsEveryTaskOnce) {
  std::vector<std::atomic<int>> counts(64);
  WorkerPool::instance().parallel_for(
      64, 4, [&](int t) { counts[static_cast<std::size_t>(t)]++; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(WorkerPool, ParallelForPropagatesError) {
  EXPECT_THROW(WorkerPool::instance().parallel_for(
                   16, 4,
                   [&](int t) {
                     if (t == 9) throw std::runtime_error("task 9 boom");
                   }),
               std::runtime_error);
}

}  // namespace
}  // namespace tsr::rt
