// Virtual cluster runtime: barrier semantics, SPMD execution, exception
// propagation and simulated clocks.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/barrier.hpp"
#include "runtime/cluster.hpp"
#include "runtime/sim_clock.hpp"

namespace tsr::rt {
namespace {

TEST(Barrier, RejectsNonPositiveCount) {
  EXPECT_THROW(Barrier(0), std::invalid_argument);
  EXPECT_THROW(Barrier(-3), std::invalid_argument);
}

TEST(Barrier, SingleThreadPassesThrough) {
  Barrier b(1);
  b.arrive_and_wait();
  b.arrive_and_wait();  // reusable
}

TEST(Barrier, SynchronizesPhases) {
  constexpr int kThreads = 8;
  constexpr int kPhases = 50;
  Barrier barrier(kThreads);
  std::atomic<int> phase_counter{0};
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int p = 0; p < kPhases; ++p) {
        phase_counter.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier, all kThreads arrivals of this phase happened.
        if (phase_counter.load() < kThreads * (p + 1)) ok = false;
        barrier.arrive_and_wait();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(phase_counter.load(), kThreads * kPhases);
}

TEST(RunSpmd, RunsEveryRankExactlyOnce) {
  std::vector<std::atomic<int>> counts(16);
  run_spmd(16, [&](int r) { counts[static_cast<std::size_t>(r)]++; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(RunSpmd, SingleRankFastPath) {
  int called = 0;
  run_spmd(1, [&](int r) {
    EXPECT_EQ(r, 0);
    ++called;
  });
  EXPECT_EQ(called, 1);
}

TEST(RunSpmd, RejectsNonPositiveRanks) {
  EXPECT_THROW(run_spmd(0, [](int) {}), std::invalid_argument);
}

TEST(RunSpmd, PropagatesException) {
  EXPECT_THROW(
      run_spmd(4,
               [&](int r) {
                 if (r == 2) throw std::runtime_error("rank 2 boom");
               }),
      std::runtime_error);
}

TEST(RunSpmd, JoinsAllRanksEvenOnFailure) {
  std::atomic<int> finished{0};
  try {
    run_spmd(6, [&](int r) {
      if (r == 0) throw std::logic_error("early");
      finished.fetch_add(1);
    });
    FAIL() << "expected throw";
  } catch (const std::logic_error&) {
  }
  EXPECT_EQ(finished.load(), 5);
}

TEST(SimClock, AdvanceAccumulates) {
  SimClock c;
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  c.advance(1.5);
  c.advance(0.5);
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
}

TEST(SimClock, NegativeAdvanceIgnored) {
  SimClock c;
  c.advance(1.0);
  c.advance(-5.0);
  EXPECT_DOUBLE_EQ(c.now(), 1.0);
}

TEST(SimClock, AdvanceToIsMonotone) {
  SimClock c;
  c.advance_to(3.0);
  EXPECT_DOUBLE_EQ(c.now(), 3.0);
  c.advance_to(1.0);  // message from the past does not rewind the clock
  EXPECT_DOUBLE_EQ(c.now(), 3.0);
}

TEST(SimClock, Reset) {
  SimClock c;
  c.advance(9.0);
  c.reset();
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  c.reset(2.0);
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
}

}  // namespace
}  // namespace tsr::rt
