// Causal language model (paper Section 3.3: "BERT, GPT-2"): mask semantics,
// corpus structure, serial learnability, and serial-vs-Tesseract exactness.
#include <gtest/gtest.h>

#include "comm/communicator.hpp"
#include "nn/attention.hpp"
#include "nn/optimizer.hpp"
#include "parallel/context.hpp"
#include "tensor/init.hpp"
#include "tensor/kernels.hpp"
#include "train/lm.hpp"

namespace tsr::train {
namespace {

LmConfig small_lm() {
  LmConfig cfg;
  cfg.vocab = 16;
  cfg.seq = 8;
  cfg.hidden = 16;
  cfg.heads = 4;
  cfg.layers = 2;
  return cfg;
}

TEST(CausalMask, UpperTriangleSuppressed) {
  Tensor scores = Tensor::zeros({2, 3, 3});
  nn::apply_causal_mask(scores);
  EXPECT_EQ(scores.at(0, 0, 0), 0.0f);
  EXPECT_LT(scores.at(0, 0, 1), -1e8f);
  EXPECT_LT(scores.at(0, 0, 2), -1e8f);
  EXPECT_EQ(scores.at(0, 1, 0), 0.0f);
  EXPECT_LT(scores.at(1, 1, 2), -1e8f);
  EXPECT_EQ(scores.at(1, 2, 2), 0.0f);
}

TEST(CausalMask, AttentionIgnoresTheFuture) {
  // Changing a future token must not change the output at position 0.
  Rng rng(1);
  nn::MultiHeadAttention attn(8, 2, rng, /*causal=*/true);
  Tensor x = random_normal({1, 4, 8}, rng);
  Tensor y1 = attn.forward(x);
  Tensor x2 = x.clone();
  for (std::int64_t e = 0; e < 8; ++e) x2.at(0, 3, e) += 5.0f;
  Tensor y2 = attn.forward(x2);
  for (std::int64_t e = 0; e < 8; ++e) {
    EXPECT_FLOAT_EQ(y1.at(0, 0, e), y2.at(0, 0, e));
    EXPECT_FLOAT_EQ(y1.at(0, 2, e), y2.at(0, 2, e));
  }
  // ...but the final position does see it.
  float diff = 0.0f;
  for (std::int64_t e = 0; e < 8; ++e) {
    diff += std::abs(y1.at(0, 3, e) - y2.at(0, 3, e));
  }
  EXPECT_GT(diff, 0.0f);
}

TEST(CausalMask, NonCausalAttendsEverywhere) {
  Rng rng(2);
  nn::MultiHeadAttention attn(8, 2, rng, /*causal=*/false);
  Tensor x = random_normal({1, 4, 8}, rng);
  Tensor y1 = attn.forward(x);
  Tensor x2 = x.clone();
  for (std::int64_t e = 0; e < 8; ++e) x2.at(0, 3, e) += 5.0f;
  Tensor y2 = attn.forward(x2);
  float diff = 0.0f;
  for (std::int64_t e = 0; e < 8; ++e) {
    diff += std::abs(y1.at(0, 0, e) - y2.at(0, 0, e));
  }
  EXPECT_GT(diff, 0.0f);
}

TEST(Corpus, PeriodicStructure) {
  SyntheticCorpus corpus(4, 8, 16, 3, 7);
  EXPECT_EQ(corpus.size(), 4);
  std::vector<int> idx{0};
  std::vector<int> in = corpus.inputs(idx);
  std::vector<int> tg = corpus.targets(idx);
  ASSERT_EQ(in.size(), 8u);
  ASSERT_EQ(tg.size(), 8u);
  // Targets are the inputs shifted by one.
  for (int t = 0; t + 1 < 8; ++t) EXPECT_EQ(tg[static_cast<std::size_t>(t)],
                                            in[static_cast<std::size_t>(t + 1)]);
  // Period 3: token t equals token t+3.
  for (int t = 0; t + 3 < 8; ++t) EXPECT_EQ(in[static_cast<std::size_t>(t)],
                                            in[static_cast<std::size_t>(t + 3)]);
}

TEST(Corpus, Deterministic) {
  SyntheticCorpus a(4, 8, 16, 3, 7);
  SyntheticCorpus b(4, 8, 16, 3, 7);
  std::vector<int> idx{0, 3};
  EXPECT_EQ(a.inputs(idx), b.inputs(idx));
}

TEST(NextTokenLoss, MatchesFlatCrossEntropy) {
  Rng rng(3);
  Tensor logits = random_normal({2, 3, 5}, rng);
  std::vector<int> targets{0, 1, 2, 3, 4, 0};
  nn::LossResult res = next_token_loss(logits, targets);
  EXPECT_EQ(res.dlogits.shape(), logits.shape());
  EXPECT_GT(res.loss, 0.0f);
}

TEST(LanguageModel, ForwardShape) {
  Rng rng(4);
  LanguageModel lm(small_lm(), rng);
  SyntheticCorpus corpus(2, 8, 16, 2, 9);
  std::vector<int> idx{0, 1};
  Tensor logits = lm.forward(corpus.inputs(idx), 2);
  EXPECT_EQ(logits.shape(), (Shape{2, 8, 16}));
}

TEST(LanguageModel, LearnsThePeriodicTask) {
  SyntheticCorpus corpus(32, 8, 16, 2, 10);
  TrainConfig tcfg;
  tcfg.epochs = 8;
  tcfg.batch_size = 8;
  tcfg.lr = 3e-3f;
  std::vector<EpochStats> hist = train_lm_serial(corpus, small_lm(), tcfg);
  EXPECT_LT(hist.back().loss, 0.5f * hist.front().loss);
  EXPECT_GT(hist.back().accuracy, 0.6f);
}

TEST(LanguageModel, TesseractMatchesSerialLogits) {
  SyntheticCorpus corpus(8, 8, 16, 2, 11);
  std::vector<int> idx{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> in = corpus.inputs(idx);

  Rng srng(44);
  LanguageModel serial(small_lm(), srng);
  Tensor ref = serial.forward(in, 8);

  comm::World world(8);
  world.run([&](comm::Communicator& c) {
    par::TesseractContext ctx(c, 2, 2);
    Rng wrng(44);
    TesseractLanguageModel model(ctx, small_lm(), wrng);
    Tensor logits = model.forward(in, 8);
    EXPECT_LT(max_abs_diff(logits, ref), 2e-3f);
  });
}

// ---- BERT-style masked LM -----------------------------------------------------

TEST(MaskedLm, MaskingIsDeterministicAndNonEmpty) {
  SyntheticCorpus corpus(4, 8, 16, 2, 20);
  std::vector<int> idx{0, 1, 2, 3};
  std::vector<int> in = corpus.inputs(idx);
  MaskedBatch a = make_masked_batch(in, 8, 15, /*mask_token=*/16, 5);
  MaskedBatch b = make_masked_batch(in, 8, 15, 16, 5);
  EXPECT_EQ(a.inputs, b.inputs);
  // Every sample has at least one masked position.
  for (int s = 0; s < 4; ++s) {
    int count = 0;
    for (int t = 0; t < 8; ++t) count += a.masked[static_cast<std::size_t>(s * 8 + t)];
    EXPECT_GE(count, 1) << "sample " << s;
  }
  // Masked inputs carry the mask token; unmasked carry the original.
  for (std::size_t i = 0; i < a.inputs.size(); ++i) {
    if (a.masked[i] != 0) {
      EXPECT_EQ(a.inputs[i], 16);
    } else {
      EXPECT_EQ(a.inputs[i], in[i]);
    }
  }
}

TEST(MaskedLm, LossGradientZeroAtUnmaskedPositions) {
  Rng rng(21);
  Tensor logits = random_normal({2, 4, 6}, rng);
  std::vector<int> tokens{0, 1, 2, 3, 4, 5, 0, 1};
  MaskedBatch mb = make_masked_batch(tokens, 4, 30, 6, 9);
  nn::LossResult res = masked_token_loss(logits, mb);
  const Tensor dflat = res.dlogits.reshape({8, 6});
  for (std::int64_t p = 0; p < 8; ++p) {
    float row = 0.0f;
    for (std::int64_t v = 0; v < 6; ++v) row += std::abs(dflat.at(p, v));
    if (mb.masked[static_cast<std::size_t>(p)] != 0) {
      EXPECT_GT(row, 0.0f);
    } else {
      EXPECT_FLOAT_EQ(row, 0.0f);
    }
  }
}

TEST(MaskedLm, TesseractMatchesSerial) {
  SyntheticCorpus corpus(8, 8, 16, 2, 22);
  std::vector<int> idx{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> raw = corpus.inputs(idx);
  LmConfig cfg = small_lm();
  MaskedBatch mb = make_masked_batch(raw, 8, 15, static_cast<int>(cfg.vocab), 3);

  Rng srng(55);
  MaskedLanguageModel serial(nullptr, cfg, srng);
  Tensor ref = serial.forward(mb.inputs, 8);
  nn::LossResult sres = masked_token_loss(ref, mb);
  serial.zero_grad();
  serial.backward(sres.dlogits);

  comm::World world(8);
  world.run([&](comm::Communicator& c) {
    par::TesseractContext ctx(c, 2, 2);
    Rng wrng(55);
    MaskedLanguageModel model(&ctx, cfg, wrng);
    Tensor logits = model.forward(mb.inputs, 8);
    EXPECT_LT(max_abs_diff(logits, ref), 2e-3f);
    nn::LossResult res = masked_token_loss(logits, mb);
    EXPECT_NEAR(res.loss, sres.loss, 1e-4f);
    model.zero_grad();
    model.backward(res.dlogits);
  });
}

TEST(MaskedLm, LearnsToFillMasks) {
  // The periodic corpus makes masked positions recoverable from context —
  // a bidirectional model should learn it quickly.
  SyntheticCorpus corpus(32, 8, 16, 2, 23);
  LmConfig cfg = small_lm();
  Rng wrng(66);
  MaskedLanguageModel model(nullptr, cfg, wrng);
  nn::Adam opt(3e-3f);
  std::vector<int> idx(32);
  for (int i = 0; i < 32; ++i) idx[static_cast<std::size_t>(i)] = i;
  float first = 0.0f;
  float last = 0.0f;
  for (int step = 0; step < 30; ++step) {
    std::vector<int> raw = corpus.inputs(idx);
    MaskedBatch mb = make_masked_batch(raw, 8, 20, static_cast<int>(cfg.vocab),
                                       static_cast<std::uint64_t>(step));
    Tensor logits = model.forward(mb.inputs, 32);
    nn::LossResult res = masked_token_loss(logits, mb);
    if (step == 0) first = res.loss;
    last = res.loss;
    model.zero_grad();
    model.backward(res.dlogits);
    std::vector<nn::Param*> params = model.params();
    opt.step(params);
  }
  EXPECT_LT(last, 0.5f * first);
}

TEST(LanguageModel, TrainingCurvesCoincide) {
  SyntheticCorpus corpus(16, 8, 16, 2, 12);
  TrainConfig tcfg;
  tcfg.epochs = 2;
  tcfg.batch_size = 8;
  tcfg.lr = 1e-3f;
  std::vector<EpochStats> serial = train_lm_serial(corpus, small_lm(), tcfg);
  std::vector<EpochStats> parallel =
      train_lm_tesseract(corpus, small_lm(), tcfg, 2, 2);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t e = 0; e < serial.size(); ++e) {
    EXPECT_NEAR(serial[e].loss, parallel[e].loss, 5e-2f);
  }
}

}  // namespace
}  // namespace tsr::train
