// Communicator: point-to-point, every collective against its mathematical
// definition across a sweep of group sizes, group construction (split /
// subgroup), statistics accounting, and failure handling.
#include <gtest/gtest.h>

#include <numeric>

#include "comm/communicator.hpp"

namespace tsr::comm {
namespace {

// ---- point-to-point ---------------------------------------------------------

TEST(PointToPoint, SendRecvDeliversPayload) {
  World world(2);
  world.run([&](Communicator& c) {
    if (c.rank() == 0) {
      c.send(1, /*tag=*/7, std::vector<float>{1, 2, 3});
    } else {
      Payload got = c.recv(0, 7);
      ASSERT_EQ(got.size(), 3u);
      EXPECT_EQ(got[2], 3.0f);
    }
  });
}

TEST(PointToPoint, TagsKeepMessagesApart) {
  World world(2);
  world.run([&](Communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 1, std::vector<float>{10});
      c.send(1, 2, std::vector<float>{20});
    } else {
      // Receive in the opposite order of sending: tags must disambiguate.
      EXPECT_EQ(c.recv(0, 2)[0], 20.0f);
      EXPECT_EQ(c.recv(0, 1)[0], 10.0f);
    }
  });
}

TEST(PointToPoint, FifoPerSenderAndTag) {
  World world(2);
  world.run([&](Communicator& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        c.send(1, 5, std::vector<float>{static_cast<float>(i)});
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(c.recv(0, 5)[0], static_cast<float>(i));
      }
    }
  });
}

TEST(PointToPoint, SendrecvExchanges) {
  World world(3);
  world.run([&](Communicator& c) {
    std::vector<float> send{static_cast<float>(c.rank())};
    std::vector<float> recv(1);
    const int right = (c.rank() + 1) % 3;
    const int left = (c.rank() + 2) % 3;
    c.sendrecv(right, send, left, recv, /*tag=*/3);
    EXPECT_EQ(recv[0], static_cast<float>(left));
  });
}

// ---- collectives over a sweep of group sizes ----------------------------------

class CollectiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSweep, Barrier) {
  World world(GetParam());
  world.run([&](Communicator& c) {
    for (int i = 0; i < 3; ++i) c.barrier();
  });
}

TEST_P(CollectiveSweep, BroadcastFromEveryRoot) {
  const int g = GetParam();
  World world(g);
  for (int root = 0; root < g; ++root) {
    world.run([&](Communicator& c) {
      std::vector<float> data(5, c.rank() == root ? 42.0f : -1.0f);
      c.broadcast(data, root);
      for (float v : data) EXPECT_EQ(v, 42.0f) << "g=" << g << " root=" << root;
    });
  }
}

TEST_P(CollectiveSweep, ReduceSumToEveryRoot) {
  const int g = GetParam();
  World world(g);
  const float expect = static_cast<float>(g * (g - 1) / 2);
  for (int root = 0; root < g; ++root) {
    world.run([&](Communicator& c) {
      std::vector<float> data(3, static_cast<float>(c.rank()));
      c.reduce(data, root);
      if (c.rank() == root) {
        for (float v : data) EXPECT_EQ(v, expect);
      }
    });
  }
}

TEST_P(CollectiveSweep, ReduceMax) {
  const int g = GetParam();
  World world(g);
  world.run([&](Communicator& c) {
    std::vector<float> data{static_cast<float>(c.rank() * 10)};
    c.reduce(data, 0, ReduceOp::Max);
    if (c.rank() == 0) {
      EXPECT_EQ(data[0], static_cast<float>((g - 1) * 10));
    }
  });
}

TEST_P(CollectiveSweep, AllReduceSum) {
  const int g = GetParam();
  World world(g);
  const float expect = static_cast<float>(g * (g - 1) / 2);
  world.run([&](Communicator& c) {
    // Size chosen to exercise uneven ring chunks (not divisible by g).
    std::vector<float> data(7, static_cast<float>(c.rank()));
    c.all_reduce(data);
    for (float v : data) EXPECT_EQ(v, expect);
  });
}

TEST_P(CollectiveSweep, AllReduceMax) {
  const int g = GetParam();
  World world(g);
  world.run([&](Communicator& c) {
    std::vector<float> data(4, static_cast<float>(-c.rank()));
    c.all_reduce(data, ReduceOp::Max);
    for (float v : data) EXPECT_EQ(v, 0.0f);
  });
}

TEST_P(CollectiveSweep, AllReduceTinyBuffer) {
  const int g = GetParam();
  World world(g);
  world.run([&](Communicator& c) {
    std::vector<float> data{1.0f};  // count < group size
    c.all_reduce(data);
    EXPECT_EQ(data[0], static_cast<float>(g));
  });
}

TEST_P(CollectiveSweep, AllGather) {
  const int g = GetParam();
  World world(g);
  world.run([&](Communicator& c) {
    std::vector<float> local{static_cast<float>(c.rank()),
                             static_cast<float>(c.rank() + 100)};
    std::vector<float> out(static_cast<std::size_t>(2 * g));
    c.all_gather(local, out);
    for (int r = 0; r < g; ++r) {
      EXPECT_EQ(out[static_cast<std::size_t>(2 * r)], static_cast<float>(r));
      EXPECT_EQ(out[static_cast<std::size_t>(2 * r + 1)],
                static_cast<float>(r + 100));
    }
  });
}

TEST_P(CollectiveSweep, ReduceScatter) {
  const int g = GetParam();
  World world(g);
  world.run([&](Communicator& c) {
    // data[r*2 + j] = r + rank; reduced chunk r = sum over ranks.
    std::vector<float> data(static_cast<std::size_t>(2 * g));
    for (int r = 0; r < g; ++r) {
      data[static_cast<std::size_t>(2 * r)] =
          static_cast<float>(r + c.rank());
      data[static_cast<std::size_t>(2 * r + 1)] = 1.0f;
    }
    std::vector<float> out(2);
    c.reduce_scatter(data, out);
    const float expect0 =
        static_cast<float>(g * c.rank() + g * (g - 1) / 2);
    EXPECT_EQ(out[0], expect0);
    EXPECT_EQ(out[1], static_cast<float>(g));
  });
}

TEST_P(CollectiveSweep, GatherToEveryRoot) {
  const int g = GetParam();
  World world(g);
  for (int root = 0; root < g; ++root) {
    world.run([&](Communicator& c) {
      std::vector<float> local{static_cast<float>(c.rank())};
      std::vector<float> out(static_cast<std::size_t>(g), -1.0f);
      c.gather(local, c.rank() == root ? std::span<float>(out)
                                       : std::span<float>(out.data(), 0),
               root);
      if (c.rank() == root) {
        for (int r = 0; r < g; ++r) {
          EXPECT_EQ(out[static_cast<std::size_t>(r)], static_cast<float>(r));
        }
      }
    });
  }
}

TEST_P(CollectiveSweep, Scatter) {
  const int g = GetParam();
  World world(g);
  world.run([&](Communicator& c) {
    std::vector<float> in;
    if (c.rank() == 0) {
      in.resize(static_cast<std::size_t>(g));
      std::iota(in.begin(), in.end(), 0.0f);
    }
    std::vector<float> local(1, -1.0f);
    c.scatter(in, local, 0);
    EXPECT_EQ(local[0], static_cast<float>(c.rank()));
  });
}

TEST_P(CollectiveSweep, AllToAll) {
  const int g = GetParam();
  World world(g);
  world.run([&](Communicator& c) {
    // in chunk for destination d carries value rank*100 + d.
    std::vector<float> in(static_cast<std::size_t>(g));
    for (int d = 0; d < g; ++d) {
      in[static_cast<std::size_t>(d)] = static_cast<float>(c.rank() * 100 + d);
    }
    std::vector<float> out(static_cast<std::size_t>(g), -1.0f);
    c.all_to_all(in, out);
    for (int s = 0; s < g; ++s) {
      EXPECT_EQ(out[static_cast<std::size_t>(s)],
                static_cast<float>(s * 100 + c.rank()));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, CollectiveSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 16));

// ---- group construction -------------------------------------------------------

TEST(Split, EvenOddGroups) {
  World world(6);
  world.run([&](Communicator& c) {
    Communicator sub = c.split(c.rank() % 2, c.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), c.rank() / 2);
    // All-reduce within the color group only.
    std::vector<float> v{1.0f};
    sub.all_reduce(v);
    EXPECT_EQ(v[0], 3.0f);
  });
}

TEST(Split, KeyControlsOrdering) {
  World world(4);
  world.run([&](Communicator& c) {
    // Reverse order via descending keys.
    Communicator sub = c.split(0, -c.rank());
    EXPECT_EQ(sub.rank(), c.size() - 1 - c.rank());
  });
}

TEST(Subgroup, RowGroupsOfA2x2Grid) {
  World world(4);
  world.run([&](Communicator& c) {
    const int i = c.rank() / 2;
    Communicator row = c.subgroup({2 * i, 2 * i + 1});
    EXPECT_EQ(row.size(), 2);
    std::vector<float> v{static_cast<float>(c.rank())};
    row.all_reduce(v);
    EXPECT_EQ(v[0], static_cast<float>(4 * i + 1));  // (2i) + (2i+1)
  });
}

TEST(Subgroup, CallerMustBeMember) {
  World world(2);
  EXPECT_THROW(world.run([&](Communicator& c) {
                 if (c.rank() == 0) (void)c.subgroup({1});
                 // rank 1 takes no action; rank 0 throws locally before any
                 // communication happens.
               }),
               std::invalid_argument);
}

TEST(Subgroup, ConcurrentRowAndColumnCollectives) {
  // 2x2 grid: rows {0,1},{2,3}, columns {0,2},{1,3}; run collectives on both
  // interleaved to check tag isolation between communicators.
  World world(4);
  world.run([&](Communicator& c) {
    const int i = c.rank() / 2;
    const int j = c.rank() % 2;
    Communicator row = c.subgroup({2 * i, 2 * i + 1});
    Communicator col = c.subgroup({j, j + 2});
    std::vector<float> a{static_cast<float>(c.rank())};
    std::vector<float> b{static_cast<float>(c.rank())};
    row.all_reduce(a);
    col.all_reduce(b);
    EXPECT_EQ(a[0], static_cast<float>(4 * i + 1));
    EXPECT_EQ(b[0], static_cast<float>(2 * j + 2));  // j + (j+2)
  });
}

// ---- statistics ---------------------------------------------------------------

TEST(Stats, BroadcastBytesAccounted) {
  World world(4);
  world.run([&](Communicator& c) {
    std::vector<float> data(10, 1.0f);
    c.broadcast(data, 0);
  });
  CommStats total = world.total_stats();
  // Binomial tree over 4 ranks sends exactly 3 messages of 40 bytes.
  EXPECT_EQ(total.msgs_sent, 3);
  EXPECT_EQ(total.bytes_sent, 3 * 40);
  EXPECT_EQ(total.collectives.at("broadcast").calls, 4);  // one call per rank
  EXPECT_EQ(total.collectives.at("broadcast").bytes, 4 * 40);
}

TEST(Stats, RingAllReduceWireBytes) {
  const int g = 4;
  World world(g);
  world.run([&](Communicator& c) {
    std::vector<float> data(8, 1.0f);  // divisible chunks: 2 floats each
    c.all_reduce(data);
  });
  CommStats total = world.total_stats();
  // Ring: 2(g-1) steps, each rank sends one 2-float chunk per step.
  EXPECT_EQ(total.msgs_sent, g * 2 * (g - 1));
  EXPECT_EQ(total.bytes_sent, g * 2 * (g - 1) * 8);
}

TEST(Stats, ResetClearsCounters) {
  World world(2);
  world.run([&](Communicator& c) {
    std::vector<float> v(4, 0.0f);
    c.all_reduce(v);
  });
  EXPECT_GT(world.total_stats().msgs_sent, 0);
  world.reset_stats();
  EXPECT_EQ(world.total_stats().msgs_sent, 0);
}

TEST(Stats, MergeAndToString) {
  CommStats a;
  a.record_msg(100, false);
  a.record_collective("broadcast", 100);
  CommStats b;
  b.record_msg(50, true);
  b.record_collective("broadcast", 50);
  b.record_collective("reduce", 10);
  a.merge(b);
  EXPECT_EQ(a.msgs_sent, 2);
  EXPECT_EQ(a.bytes_sent, 150);
  EXPECT_EQ(a.bytes_intra_node, 100);
  EXPECT_EQ(a.bytes_inter_node, 50);
  EXPECT_EQ(a.collective_calls(), 3);
  EXPECT_EQ(a.collective_bytes(), 160);
  EXPECT_NE(a.to_string().find("broadcast"), std::string::npos);
}

// ---- failure handling -----------------------------------------------------------

TEST(Failure, RankExceptionUnblocksPeers) {
  World world(4);
  try {
    world.run([&](Communicator& c) {
      if (c.rank() == 3) throw std::invalid_argument("injected failure");
      // Peers block in a collective that can never complete.
      std::vector<float> v(4, 0.0f);
      c.all_reduce(v);
      c.all_reduce(v);
    });
    FAIL() << "expected exception";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "injected failure");
  }
}

TEST(Failure, ShapeErrorsSurfaceOriginalMessage) {
  World world(2);
  try {
    world.run([&](Communicator& c) {
      std::vector<float> local(3);
      std::vector<float> out(5);  // wrong: must be 2 * 3
      c.all_gather(local, out);
    });
    FAIL() << "expected exception";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("all_gather"), std::string::npos);
  }
}

}  // namespace
}  // namespace tsr::comm
