// Distributed layers against their serial counterparts across grid shapes:
// LayerNorm, FeedForward, Attention, and the full Transformer layer, for
// Tesseract, Optimus (d = 1) and Megatron-LM.
#include <gtest/gtest.h>

#include "comm/communicator.hpp"
#include "nn/transformer.hpp"
#include "parallel/dist.hpp"
#include "parallel/megatron.hpp"
#include "parallel/optimus.hpp"
#include "parallel/tesseract_transformer.hpp"
#include "tensor/init.hpp"
#include "tensor/kernels.hpp"

namespace tsr::par {
namespace {

constexpr float kTol = 2e-3f;

struct GridCase {
  int q;
  int d;
};

// Common problem: b divisible by q*d, h and heads divisible by q.
struct Problem {
  std::int64_t b, s, h, heads;
};

Problem problem_for(int q, int d) {
  return Problem{2 * q * d, 3, 8 * q, 2 * q};
}

class TesseractLayerSweep : public ::testing::TestWithParam<GridCase> {};

TEST_P(TesseractLayerSweep, LayerNormMatchesSerial) {
  const auto [q, d] = GetParam();
  const Problem pb = problem_for(q, d);
  Rng data_rng(70);
  Tensor x = random_normal({pb.b, pb.s, pb.h}, data_rng);
  scale(x, 2.5f);
  Tensor dy = random_normal({pb.b, pb.s, pb.h}, data_rng);

  nn::LayerNorm serial(pb.h);
  Tensor y_ref = serial.forward(x);
  Tensor dx_ref = serial.backward(dy);

  comm::World world(q * q * d);
  world.run([&](comm::Communicator& c) {
    TesseractContext ctx(c, q, d);
    TesseractLayerNorm ln(ctx, pb.h);
    Tensor yl = ln.forward(distribute_activation(ctx.comms(), x));
    Tensor y = collect_activation(ctx.comms(), yl, pb.b, pb.s, pb.h);
    EXPECT_LT(max_abs_diff(y, y_ref), kTol);

    Tensor dxl = ln.backward(distribute_activation(ctx.comms(), dy));
    Tensor dx = collect_activation(ctx.comms(), dxl, pb.b, pb.s, pb.h);
    EXPECT_LT(max_abs_diff(dx, dx_ref), kTol);

    // gamma/beta gradients: my column shard of the serial gradient,
    // identical across rows and depth after the sync all-reduces.
    const std::int64_t lf = pb.h / q;
    Tensor dg_ref = slice_block(serial.gamma.grad.reshape({1, pb.h}), 0,
                                ctx.j() * lf, 1, lf)
                        .reshape({lf});
    EXPECT_LT(max_abs_diff(ln.gamma.grad, dg_ref), kTol);
  });
}

TEST_P(TesseractLayerSweep, FeedForwardMatchesSerial) {
  const auto [q, d] = GetParam();
  const Problem pb = problem_for(q, d);
  Rng data_rng(71);
  Tensor x = random_normal({pb.b, pb.s, pb.h}, data_rng);
  Tensor dy = random_normal({pb.b, pb.s, pb.h}, data_rng);

  Rng serial_rng(500);
  nn::FeedForward serial(pb.h, serial_rng);
  Tensor y_ref = serial.forward(x);
  Tensor dx_ref = serial.backward(dy);

  comm::World world(q * q * d);
  world.run([&](comm::Communicator& c) {
    TesseractContext ctx(c, q, d);
    Rng wrng(500);
    TesseractFeedForward ffn(ctx, pb.h, wrng);
    Tensor yl = ffn.forward(distribute_activation(ctx.comms(), x));
    Tensor y = collect_activation(ctx.comms(), yl, pb.b, pb.s, pb.h);
    EXPECT_LT(max_abs_diff(y, y_ref), kTol);
    Tensor dxl = ffn.backward(distribute_activation(ctx.comms(), dy));
    Tensor dx = collect_activation(ctx.comms(), dxl, pb.b, pb.s, pb.h);
    EXPECT_LT(max_abs_diff(dx, dx_ref), kTol);
    // fc1 weight gradient block.
    Tensor dw1_ref = pdg::distribute_b_layout(ctx.comms(), serial.fc1.w.grad);
    EXPECT_LT(max_abs_diff(ffn.fc1.w.grad, dw1_ref), kTol);
  });
}

TEST_P(TesseractLayerSweep, AttentionMatchesSerial) {
  const auto [q, d] = GetParam();
  const Problem pb = problem_for(q, d);
  Rng data_rng(72);
  Tensor x = random_normal({pb.b, pb.s, pb.h}, data_rng);
  Tensor dy = random_normal({pb.b, pb.s, pb.h}, data_rng);

  Rng serial_rng(600);
  nn::MultiHeadAttention serial(pb.h, pb.heads, serial_rng);
  Tensor y_ref = serial.forward(x);
  Tensor dx_ref = serial.backward(dy);

  comm::World world(q * q * d);
  world.run([&](comm::Communicator& c) {
    TesseractContext ctx(c, q, d);
    Rng wrng(600);
    TesseractAttention attn(ctx, pb.h, pb.heads, wrng);
    EXPECT_EQ(attn.local_heads(), pb.heads / q);
    Tensor yl = attn.forward(distribute_activation(ctx.comms(), x));
    Tensor y = collect_activation(ctx.comms(), yl, pb.b, pb.s, pb.h);
    EXPECT_LT(max_abs_diff(y, y_ref), kTol);
    Tensor dxl = attn.backward(distribute_activation(ctx.comms(), dy));
    Tensor dx = collect_activation(ctx.comms(), dxl, pb.b, pb.s, pb.h);
    EXPECT_LT(max_abs_diff(dx, dx_ref), kTol);
    // Output projection gradient (plain layout, directly comparable).
    Tensor dwp_ref = pdg::distribute_b_layout(ctx.comms(), serial.proj.w.grad);
    EXPECT_LT(max_abs_diff(attn.proj.w.grad, dwp_ref), kTol);
  });
}

TEST_P(TesseractLayerSweep, TransformerLayerMatchesSerial) {
  const auto [q, d] = GetParam();
  const Problem pb = problem_for(q, d);
  Rng data_rng(73);
  Tensor x = random_normal({pb.b, pb.s, pb.h}, data_rng);
  Tensor dy = random_normal({pb.b, pb.s, pb.h}, data_rng);

  Rng serial_rng(700);
  nn::TransformerLayer serial(pb.h, pb.heads, serial_rng);
  Tensor y_ref = serial.forward(x);
  Tensor dx_ref = serial.backward(dy);

  comm::World world(q * q * d);
  world.run([&](comm::Communicator& c) {
    TesseractContext ctx(c, q, d);
    Rng wrng(700);
    TesseractTransformerLayer layer(ctx, pb.h, pb.heads, wrng);
    Tensor yl = layer.forward(distribute_activation(ctx.comms(), x));
    Tensor y = collect_activation(ctx.comms(), yl, pb.b, pb.s, pb.h);
    EXPECT_LT(max_abs_diff(y, y_ref), kTol);
    Tensor dxl = layer.backward(distribute_activation(ctx.comms(), dy));
    Tensor dx = collect_activation(ctx.comms(), dxl, pb.b, pb.s, pb.h);
    EXPECT_LT(max_abs_diff(dx, dx_ref), kTol);
  });
}

INSTANTIATE_TEST_SUITE_P(Grids, TesseractLayerSweep,
                         ::testing::Values(GridCase{1, 1}, GridCase{2, 1},
                                           GridCase{2, 2}, GridCase{3, 2},
                                           GridCase{4, 2}));

// ---- Megatron baseline -----------------------------------------------------

class MegatronSweep : public ::testing::TestWithParam<int> {};

TEST_P(MegatronSweep, FeedForwardMatchesSerial) {
  const int p = GetParam();
  const Problem pb{4, 3, 8 * p, 2 * p};
  Rng data_rng(80);
  Tensor x = random_normal({pb.b, pb.s, pb.h}, data_rng);
  Tensor dy = random_normal({pb.b, pb.s, pb.h}, data_rng);

  Rng serial_rng(800);
  nn::FeedForward serial(pb.h, serial_rng);
  Tensor y_ref = serial.forward(x);
  Tensor dx_ref = serial.backward(dy);

  comm::World world(p);
  world.run([&](comm::Communicator& c) {
    MegatronContext ctx(c);
    Rng wrng(800);
    MegatronFeedForward ffn(ctx, pb.h, wrng);
    Tensor y = ffn.forward(x);
    EXPECT_LT(max_abs_diff(y, y_ref), kTol);
    Tensor dx = ffn.backward(dy);
    EXPECT_LT(max_abs_diff(dx, dx_ref), kTol);
  });
}

TEST_P(MegatronSweep, AttentionMatchesSerial) {
  const int p = GetParam();
  const Problem pb{4, 3, 8 * p, 2 * p};
  Rng data_rng(81);
  Tensor x = random_normal({pb.b, pb.s, pb.h}, data_rng);
  Tensor dy = random_normal({pb.b, pb.s, pb.h}, data_rng);

  Rng serial_rng(801);
  nn::MultiHeadAttention serial(pb.h, pb.heads, serial_rng);
  Tensor y_ref = serial.forward(x);
  Tensor dx_ref = serial.backward(dy);

  comm::World world(p);
  world.run([&](comm::Communicator& c) {
    MegatronContext ctx(c);
    Rng wrng(801);
    MegatronAttention attn(ctx, pb.h, pb.heads, wrng);
    Tensor y = attn.forward(x);
    EXPECT_LT(max_abs_diff(y, y_ref), kTol);
    Tensor dx = attn.backward(dy);
    EXPECT_LT(max_abs_diff(dx, dx_ref), kTol);
  });
}

TEST_P(MegatronSweep, TransformerLayerMatchesSerial) {
  const int p = GetParam();
  const Problem pb{4, 3, 8 * p, 2 * p};
  Rng data_rng(82);
  Tensor x = random_normal({pb.b, pb.s, pb.h}, data_rng);
  Tensor dy = random_normal({pb.b, pb.s, pb.h}, data_rng);

  Rng serial_rng(802);
  nn::TransformerLayer serial(pb.h, pb.heads, serial_rng);
  Tensor y_ref = serial.forward(x);
  Tensor dx_ref = serial.backward(dy);

  comm::World world(p);
  world.run([&](comm::Communicator& c) {
    MegatronContext ctx(c);
    Rng wrng(802);
    MegatronTransformerLayer layer(ctx, pb.h, pb.heads, wrng);
    Tensor y = layer.forward(x);
    EXPECT_LT(max_abs_diff(y, y_ref), kTol);
    Tensor dx = layer.backward(dy);
    EXPECT_LT(max_abs_diff(dx, dx_ref), kTol);
  });
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, MegatronSweep,
                         ::testing::Values(1, 2, 4, 8));

// ---- Optimus is exactly Tesseract at d = 1 -----------------------------------

TEST(Optimus, IdenticalToTesseractDepthOne) {
  const Problem pb{4, 3, 16, 4};
  Rng data_rng(90);
  Tensor x = random_normal({pb.b, pb.s, pb.h}, data_rng);

  Tensor y_opt;
  Tensor y_tess;
  {
    comm::World world(4);
    world.run([&](comm::Communicator& c) {
      OptimusContext ctx(c, 2);
      Rng wrng(900);
      OptimusTransformerLayer layer(ctx, pb.h, pb.heads, wrng);
      Tensor yl = layer.forward(distribute_activation(ctx.comms(), x));
      Tensor y = collect_activation(ctx.comms(), yl, pb.b, pb.s, pb.h);
      if (c.rank() == 0) y_opt = y;
    });
  }
  {
    comm::World world(4);
    world.run([&](comm::Communicator& c) {
      TesseractContext ctx(c, 2, 1);
      Rng wrng(900);
      TesseractTransformerLayer layer(ctx, pb.h, pb.heads, wrng);
      Tensor yl = layer.forward(distribute_activation(ctx.comms(), x));
      Tensor y = collect_activation(ctx.comms(), yl, pb.b, pb.s, pb.h);
      if (c.rank() == 0) y_tess = y;
    });
  }
  EXPECT_FLOAT_EQ(max_abs_diff(y_opt, y_tess), 0.0f);
}

// The paper's structural claim: the Tesseract forward pass needs NO
// inter-depth communication (B is replicated; only dB sync uses the depth
// lines). Verified on the byte counters.
TEST(TesseractStructure, ForwardHasNoDepthTraffic) {
  const Problem pb{8, 2, 16, 4};
  Rng data_rng(91);
  Tensor x = random_normal({pb.b, pb.s, pb.h}, data_rng);
  comm::World world(8, topo::MachineSpec::meluxina());
  world.run([&](comm::Communicator& c) {
    TesseractContext ctx(c, 2, 2);
    Rng wrng(901);
    TesseractTransformerLayer layer(ctx, pb.h, pb.heads, wrng);
    (void)layer.forward(distribute_activation(ctx.comms(), x));
  });
  // Depth lines are {i, i+4}: cross-node in the MeluXina mapping with
  // q*q = 4 = gpus_per_node, so depth traffic would be inter-node bytes.
  EXPECT_EQ(world.total_stats().bytes_inter_node, 0);
  EXPECT_GT(world.total_stats().bytes_intra_node, 0);
}

TEST(TesseractStructure, BackwardUsesDepthForWeightGradsOnly) {
  const Problem pb{8, 2, 16, 4};
  Rng data_rng(92);
  Tensor x = random_normal({pb.b, pb.s, pb.h}, data_rng);
  Tensor dy = random_normal({pb.b, pb.s, pb.h}, data_rng);
  comm::World world(8, topo::MachineSpec::meluxina());
  world.run([&](comm::Communicator& c) {
    TesseractContext ctx(c, 2, 2);
    Rng wrng(902);
    TesseractTransformerLayer layer(ctx, pb.h, pb.heads, wrng);
    (void)layer.forward(distribute_activation(ctx.comms(), x));
    (void)layer.backward(distribute_activation(ctx.comms(), dy));
  });
  // The forward pass alone has zero inter-node traffic (previous test);
  // adding backward must introduce it — the depth all-reduce of dB.
  EXPECT_GT(world.total_stats().bytes_inter_node, 0);
}

}  // namespace
}  // namespace tsr::par
