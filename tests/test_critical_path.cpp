// Critical-path analysis: the reported chain must tile [0, makespan] exactly
// and attribute it to real spans and wire hops.
#include <gtest/gtest.h>

#include "pdgemm/tesseract_mm.hpp"
#include "perf/critical_path.hpp"
#include "perf/export.hpp"
#include "perf/trace.hpp"
#include "tensor/init.hpp"

namespace tsr::perf {
namespace {

// The chain must be chronological, gap-free and span [0, makespan]: that is
// what makes "the segment durations sum to the makespan" true by
// construction rather than approximately.
void expect_tiles_makespan(const CriticalPathReport& rep) {
  ASSERT_FALSE(rep.segments.empty());
  EXPECT_DOUBLE_EQ(rep.segments.front().t0, 0.0);
  EXPECT_DOUBLE_EQ(rep.segments.back().t1, rep.makespan);
  for (std::size_t i = 1; i < rep.segments.size(); ++i) {
    EXPECT_DOUBLE_EQ(rep.segments[i].t0, rep.segments[i - 1].t1) << i;
  }
  EXPECT_NEAR(rep.total_seconds(), rep.makespan, 1e-9);
  double attributed = 0.0;
  for (const PathAttribution& a : rep.attribution) attributed += a.seconds;
  EXPECT_NEAR(attributed, rep.makespan, 1e-9);
}

TEST(CriticalPath, Tesseract222GemmSumsToMakespan) {
  Rng rng(7);
  Tensor a = random_normal({96, 96}, rng);
  Tensor b = random_normal({96, 96}, rng);
  comm::World world(8, topo::MachineSpec::meluxina());
  world.enable_tracing();
  world.run([&](comm::Communicator& c) {
    pdg::TesseractComms tc = pdg::TesseractComms::create(c, 2, 2);
    Tensor ab = pdg::distribute_a_layout(tc, a);
    Tensor bb = pdg::distribute_b_layout(tc, b);
    (void)pdg::tesseract_ab_local(tc, ab, bb);
  });
  const CriticalPathReport rep = analyze_critical_path(world);
  EXPECT_GT(rep.makespan, 0.0);
  EXPECT_DOUBLE_EQ(rep.makespan, world.max_sim_time());
  expect_tiles_makespan(rep);
  // The GEMM-dominated path must attribute compute and broadcast wire time.
  bool saw_gemm = false, saw_wire = false;
  for (const PathAttribution& at : rep.attribution) {
    if (at.label == "gemm") saw_gemm = true;
    if (at.label.rfind("wire", 0) == 0) saw_wire = true;
  }
  EXPECT_TRUE(saw_gemm);
  EXPECT_TRUE(saw_wire);
}

TEST(CriticalPath, CrossRankChainWalksSendEdges) {
  // Rank 0 computes (charged kernel), sends to rank 1, which waits: the
  // makespan belongs to rank 1 but the path must cross to rank 0's kernel.
  comm::World world(2, topo::MachineSpec::meluxina());
  world.enable_tracing();
  world.run([&](comm::Communicator& c) {
    std::vector<float> v(256, 1.0f);
    if (c.rank() == 0) {
      pdg::charge_memory_bound(c, 1 << 20);  // rank 0 is the straggler
      c.send(1, 0, v);
    } else {
      (void)c.recv(0, 0);
    }
  });
  const CriticalPathReport rep = analyze_critical_path(world);
  expect_tiles_makespan(rep);
  EXPECT_EQ(rep.end_rank, 1);
  bool on_rank0 = false, wire = false;
  for (const PathSegment& s : rep.segments) {
    if (s.rank == 0 && s.kind == PathSegment::Kind::Span) on_rank0 = true;
    if (s.kind == PathSegment::Kind::Wire) {
      wire = true;
      EXPECT_EQ(s.src, 0);
      EXPECT_EQ(s.rank, 1);
    }
  }
  EXPECT_TRUE(on_rank0);
  EXPECT_TRUE(wire);
}

TEST(CriticalPath, UntracedWorldReportsSingleUnattributedStretch) {
  comm::World world(2, topo::MachineSpec::meluxina());
  world.run([&](comm::Communicator& c) {
    std::vector<float> v(64, 1.0f);
    c.all_reduce(v);
  });
  const CriticalPathReport rep = analyze_critical_path(world);
  EXPECT_GT(rep.makespan, 0.0);
  expect_tiles_makespan(rep);
  ASSERT_EQ(rep.segments.size(), 1u);
  EXPECT_EQ(rep.segments.front().label, "idle");
}

TEST(CriticalPath, SurvivesRepeatMeasurement) {
  // perf::measure resets traces between runs; the analysis of the second run
  // must see only the second run's spans (regression test for stale traces).
  Rng rng(3);
  Tensor a = random_normal({32, 32}, rng);
  Tensor b = random_normal({32, 32}, rng);
  comm::World world(4, topo::MachineSpec::meluxina());
  world.enable_tracing();
  auto gemm = [&](comm::Communicator& c) {
    pdg::TesseractComms tc = pdg::TesseractComms::create(c, 2, 1);
    Tensor ab = pdg::distribute_a_layout(tc, a);
    Tensor bb = pdg::distribute_b_layout(tc, b);
    (void)pdg::tesseract_ab_local(tc, ab, bb);
  };
  const Measurement m1 = measure(world, gemm);
  const Measurement m2 = measure(world, gemm);
  EXPECT_DOUBLE_EQ(m1.sim_seconds, m2.sim_seconds);
  const CriticalPathReport rep = analyze_critical_path(world);
  EXPECT_DOUBLE_EQ(rep.makespan, m2.sim_seconds);
  expect_tiles_makespan(rep);
  // No span may outlive the fresh timeline — stale spans from run 1 would.
  for (int r = 0; r < 4; ++r) {
    for (const comm::TraceEvent& e : world.trace(r)) {
      EXPECT_LE(e.t1, rep.makespan + 1e-12);
    }
  }
}

TEST(CriticalPath, JsonReportParsesAndMatches) {
  comm::World world(2, topo::MachineSpec::meluxina());
  world.enable_tracing();
  world.run([&](comm::Communicator& c) {
    std::vector<float> v(128, 1.0f);
    c.all_reduce(v);
  });
  const CriticalPathReport rep = analyze_critical_path(world);
  std::string err;
  const obs::JsonValue round = obs::json_parse(rep.to_json().dump(2), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_DOUBLE_EQ(round.find("makespan_sim_seconds")->as_double(),
                   rep.makespan);
  EXPECT_EQ(round.find("segments")->size(), rep.segments.size());
  EXPECT_EQ(round.find("attribution")->size(), rep.attribution.size());
}

}  // namespace
}  // namespace tsr::perf
