// Serial neural-net layers: functional behaviour (shapes, special values,
// invariants) and optimizers. Gradient correctness lives in test_nn_grad.cpp.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation.hpp"
#include "nn/attention.hpp"
#include "nn/dropout.hpp"
#include "nn/embedding.hpp"
#include "nn/feedforward.hpp"
#include "nn/layernorm.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/softmax.hpp"
#include "nn/transformer.hpp"
#include "tensor/init.hpp"
#include "tensor/kernels.hpp"

namespace tsr::nn {
namespace {

TEST(Linear, ShapesAndBias) {
  Rng rng(1);
  Linear fc(4, 6, rng);
  Tensor x = random_normal({2, 3, 4}, rng);
  Tensor y = fc.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 6}));
  // Zero input -> bias only (bias initialized to zero).
  Tensor z = fc.forward(Tensor::zeros({1, 4}));
  EXPECT_FLOAT_EQ(max_abs(z), 0.0f);
}

TEST(Linear, NoBiasVariant) {
  Rng rng(2);
  Linear fc(4, 4, rng, /*with_bias=*/false);
  EXPECT_FALSE(fc.has_bias());
  EXPECT_EQ(fc.params().size(), 1u);
  Tensor y = fc.forward(Tensor::ones({1, 4}));
  EXPECT_EQ(y.numel(), 4);
}

TEST(Linear, BackwardRequiresForward) {
  Rng rng(3);
  Linear fc(4, 4, rng);
  EXPECT_THROW(fc.backward(Tensor::ones({1, 4})), std::invalid_argument);
}

TEST(Linear, GradAccumulatesAcrossCalls) {
  Rng rng(4);
  Linear fc(3, 3, rng);
  Tensor x = random_normal({2, 3}, rng);
  Tensor dy = random_normal({2, 3}, rng);
  (void)fc.forward(x);
  (void)fc.backward(dy);
  Tensor once = fc.w.grad.clone();
  (void)fc.forward(x);
  (void)fc.backward(dy);
  EXPECT_LT(max_abs_diff(fc.w.grad, scaled(once, 2.0f)), 1e-5f);
  fc.zero_grad();
  EXPECT_FLOAT_EQ(max_abs(fc.w.grad), 0.0f);
}

TEST(LayerNorm, OutputIsNormalized) {
  Rng rng(5);
  LayerNorm ln(16);
  Tensor x = random_normal({4, 16}, rng);
  scale(x, 3.0f);
  Tensor y = ln.forward(x);
  for (std::int64_t r = 0; r < 4; ++r) {
    double s = 0.0;
    double s2 = 0.0;
    for (std::int64_t i = 0; i < 16; ++i) {
      s += y.at(r, i);
      s2 += static_cast<double>(y.at(r, i)) * y.at(r, i);
    }
    EXPECT_NEAR(s / 16.0, 0.0, 1e-4);
    EXPECT_NEAR(s2 / 16.0, 1.0, 1e-2);
  }
}

TEST(LayerNorm, GammaBetaApplied) {
  LayerNorm ln(4);
  ln.gamma.value.fill(2.0f);
  ln.beta.value.fill(1.0f);
  Tensor x = Tensor::from({1, 2, 3, 4}, {1, 4});
  Tensor y = ln.forward(x);
  // mean of y = beta (normalized part has zero mean), range scaled by gamma.
  double s = 0.0;
  for (std::int64_t i = 0; i < 4; ++i) s += y.at(0, i);
  EXPECT_NEAR(s / 4.0, 1.0, 1e-5);
}

TEST(Activation, GeluKnownValues) {
  Tensor x = Tensor::of({0.0f, 100.0f, -100.0f});
  Tensor y = gelu(x);
  EXPECT_FLOAT_EQ(y.at(0), 0.0f);
  EXPECT_NEAR(y.at(1), 100.0f, 1e-3f);   // identity for large positive
  EXPECT_NEAR(y.at(2), 0.0f, 1e-3f);     // zero for large negative
}

TEST(Activation, ReluAndBackward) {
  Tensor x = Tensor::of({-1.0f, 2.0f});
  Tensor y = relu(x);
  EXPECT_FLOAT_EQ(y.at(0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(1), 2.0f);
  Tensor dy = Tensor::of({5.0f, 5.0f});
  Tensor dx = relu_backward(x, dy);
  EXPECT_FLOAT_EQ(dx.at(0), 0.0f);
  EXPECT_FLOAT_EQ(dx.at(1), 5.0f);
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(6);
  Tensor x = random_normal({5, 7}, rng);
  Tensor y = softmax(x);
  for (std::int64_t r = 0; r < 5; ++r) {
    double s = 0.0;
    for (std::int64_t i = 0; i < 7; ++i) {
      EXPECT_GT(y.at(r, i), 0.0f);
      s += y.at(r, i);
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Softmax, StableUnderLargeInputs) {
  Tensor x = Tensor::of({1000.0f, 1000.0f, 1000.0f});
  Tensor y = softmax(x.reshape({1, 3}));
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_NEAR(y.at(0, i), 1.0f / 3, 1e-5f);
}

TEST(Softmax, ShiftInvariance) {
  Rng rng(7);
  Tensor x = random_normal({2, 5}, rng);
  Tensor shifted = x.clone();
  for (std::int64_t i = 0; i < shifted.numel(); ++i) shifted.at(i) += 10.0f;
  EXPECT_LT(max_abs_diff(softmax(x), softmax(shifted)), 1e-5f);
}

TEST(Dropout, ZeroProbabilityIsIdentity) {
  Dropout drop(0.0f);
  Rng rng(8);
  Tensor x = random_normal({3, 3}, rng);
  Tensor y = drop.forward(x, /*train=*/true);
  EXPECT_FLOAT_EQ(max_abs_diff(x, y), 0.0f);
  Tensor dy = random_normal({3, 3}, rng);
  EXPECT_FLOAT_EQ(max_abs_diff(drop.backward(dy), dy), 0.0f);
}

TEST(Dropout, EvalModeBypasses) {
  Dropout drop(0.5f, 1);
  Tensor x = Tensor::ones({100});
  Tensor y = drop.forward(x, /*train=*/false);
  EXPECT_FLOAT_EQ(max_abs_diff(x, y), 0.0f);
}

TEST(Dropout, MaskIsScaledAndReusedInBackward) {
  Dropout drop(0.5f, 2);
  Tensor x = Tensor::ones({10000});
  Tensor y = drop.forward(x, true);
  int zeros = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    if (y.at(i) == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y.at(i), 2.0f);  // 1 / (1 - 0.5)
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.5, 0.05);
  // Backward applies the identical mask.
  Tensor dx = drop.backward(Tensor::ones({10000}));
  EXPECT_FLOAT_EQ(max_abs_diff(dx, y), 0.0f);
}

TEST(Dropout, RejectsBadProbability) {
  EXPECT_THROW(Dropout(1.0f), std::invalid_argument);
  EXPECT_THROW(Dropout(-0.1f), std::invalid_argument);
}

TEST(Attention, HeadSplitMergeRoundTrip) {
  Rng rng(9);
  Tensor x = random_normal({2, 3, 8}, rng);
  Tensor heads = split_heads(x, 4);
  EXPECT_EQ(heads.shape(), (Shape{8, 3, 2}));
  Tensor back = merge_heads(heads, 2);
  EXPECT_FLOAT_EQ(max_abs_diff(x, back), 0.0f);
}

TEST(Attention, OutputShapeAndDeterminism) {
  Rng rng(10);
  MultiHeadAttention attn(8, 2, rng);
  Tensor x = random_normal({2, 4, 8}, rng);
  Tensor y1 = attn.forward(x);
  Tensor y2 = attn.forward(x);
  EXPECT_EQ(y1.shape(), x.shape());
  EXPECT_FLOAT_EQ(max_abs_diff(y1, y2), 0.0f);
}

TEST(Attention, RejectsIndivisibleHeads) {
  Rng rng(11);
  EXPECT_THROW(MultiHeadAttention(8, 3, rng), std::invalid_argument);
}

TEST(FeedForward, ExpansionShapes) {
  Rng rng(12);
  FeedForward ffn(8, rng, 4);
  EXPECT_EQ(ffn.fc1.out_features(), 32);
  EXPECT_EQ(ffn.fc2.in_features(), 32);
  Tensor y = ffn.forward(Tensor::ones({2, 8}));
  EXPECT_EQ(y.shape(), (Shape{2, 8}));
}

TEST(Transformer, StackDepthAndParams) {
  Rng rng(13);
  TransformerEncoder enc({.hidden = 8, .heads = 2, .layers = 3}, rng);
  // Per layer: 2 LN (2 params each) + qkv/proj/fc1/fc2 (2 params each) = 12.
  EXPECT_EQ(enc.params().size(), 3u * 12u);
  Tensor x = random_normal({2, 4, 8}, rng);
  EXPECT_EQ(enc.forward(x).shape(), x.shape());
}

TEST(Embedding, LookupAndGrad) {
  Rng rng(14);
  Embedding emb(10, 4, rng);
  std::vector<int> ids{1, 3, 1, 9};
  Tensor y = emb.forward(ids, 2);
  EXPECT_EQ(y.shape(), (Shape{2, 2, 4}));
  // Row 0 and row 2 (both id 1) must be identical.
  for (std::int64_t e = 0; e < 4; ++e) {
    EXPECT_EQ(y.at(0, 0, e), y.at(1, 0, e));
  }
  emb.backward(Tensor::ones({2, 2, 4}));
  // id 1 appears twice -> gradient 2, id 0 never -> 0.
  EXPECT_FLOAT_EQ(emb.table.grad.at(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(emb.table.grad.at(0, 0), 0.0f);
}

TEST(PatchEmbedding, TokenCount) {
  Rng rng(15);
  PatchEmbedding pe(8, 4, 3, 16, rng);
  EXPECT_EQ(pe.tokens(), 1 + 4);  // cls + (8/4)^2 patches
  Tensor imgs = random_normal({2, 3, 8, 8}, rng);
  Tensor y = pe.forward(imgs);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 16}));
}

TEST(Loss, CrossEntropyPerfectPrediction) {
  Tensor logits = Tensor::from({100, 0, 0, 0, 100, 0}, {2, 3});
  std::vector<int> targets{0, 1};
  LossResult res = softmax_cross_entropy(logits, targets);
  EXPECT_NEAR(res.loss, 0.0f, 1e-4f);
  EXPECT_LT(max_abs(res.dlogits), 1e-4f);
}

TEST(Loss, CrossEntropyUniform) {
  Tensor logits = Tensor::zeros({1, 4});
  std::vector<int> targets{2};
  LossResult res = softmax_cross_entropy(logits, targets);
  EXPECT_NEAR(res.loss, std::log(4.0f), 1e-5f);
  // Gradient: probs - onehot = 0.25 everywhere except 0.25 - 1 at target.
  EXPECT_NEAR(res.dlogits.at(0, 2), -0.75f, 1e-5f);
  EXPECT_NEAR(res.dlogits.at(0, 0), 0.25f, 1e-5f);
}

TEST(Loss, MseZeroForEqual) {
  Tensor p = Tensor::ones({4});
  LossResult res = mse_loss(p, p.clone());
  EXPECT_FLOAT_EQ(res.loss, 0.0f);
  EXPECT_FLOAT_EQ(max_abs(res.dlogits), 0.0f);
}

TEST(Optimizer, SgdStepMovesAgainstGradient) {
  Param p({2});
  p.value.fill(1.0f);
  p.grad.fill(0.5f);
  SGD opt(0.1f);
  std::vector<Param*> params{&p};
  opt.step(params);
  EXPECT_FLOAT_EQ(p.value.at(0), 1.0f - 0.1f * 0.5f);
}

TEST(Optimizer, SgdMomentumAccumulates) {
  Param p({1});
  p.value.fill(0.0f);
  p.grad.fill(1.0f);
  SGD opt(1.0f, /*momentum=*/0.9f);
  std::vector<Param*> params{&p};
  opt.step(params);
  const float after_one = p.value.at(0);
  opt.step(params);
  // Second step moves further: v = 0.9*1 + 1 = 1.9.
  EXPECT_FLOAT_EQ(p.value.at(0), after_one - 1.9f);
}

TEST(Optimizer, AdamFirstStepIsLrSized) {
  Param p({1});
  p.value.fill(0.0f);
  p.grad.fill(123.0f);  // magnitude irrelevant on step 1 (bias correction)
  Adam opt(0.01f);
  std::vector<Param*> params{&p};
  opt.step(params);
  EXPECT_NEAR(p.value.at(0), -0.01f, 1e-5f);
}

TEST(Optimizer, AdamWeightDecayShrinksWeights) {
  Param p({1});
  p.value.fill(1.0f);
  p.grad.fill(0.0f);
  Adam opt(0.1f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.5f);
  std::vector<Param*> params{&p};
  opt.step(params);
  EXPECT_NEAR(p.value.at(0), 1.0f - 0.1f * 0.5f, 1e-5f);
}

}  // namespace
}  // namespace tsr::nn
