// Serving front-end (src/serve/): arrival-process determinism across the
// scheduler backends, SLO admission-queue semantics, KV-cache decode
// bit-identity against the full-recompute forward (serial and Tesseract),
// continuous-batching slot isolation, and end-to-end serving determinism.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "fault/fault.hpp"
#include "serve/batcher.hpp"
#include "serve/engine.hpp"
#include "serve/queue.hpp"
#include "serve/workload.hpp"
#include "topology/machine_spec.hpp"
#include "train/lm.hpp"

namespace tsr::serve {
namespace {

class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    if (const char* v = std::getenv(name)) {
      had_ = true;
      old_ = v;
    }
  }
  ~EnvGuard() {
    if (had_) {
      setenv(name_, old_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }
  void set(const std::string& value) { setenv(name_, value.c_str(), 1); }
  void clear() { unsetenv(name_); }

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

struct Backend {
  const char* label;
  const char* spmd;     // "" = default
  const char* workers;  // "" = default
};

const Backend kMatrix[] = {
    {"fibers-w1", "", "1"},
    {"fibers-w4", "", "4"},
    {"threads", "threads", ""},
};

void apply_backend(const Backend& b, EnvGuard& spmd, EnvGuard& workers) {
  if (b.spmd[0] != '\0') {
    spmd.set(b.spmd);
  } else {
    spmd.clear();
  }
  if (b.workers[0] != '\0') {
    workers.set(b.workers);
  } else {
    workers.clear();
  }
}

train::LmConfig small_lm() {
  train::LmConfig cfg;
  cfg.vocab = 16;
  cfg.seq = 8;
  cfg.hidden = 16;
  cfg.heads = 4;
  cfg.layers = 2;
  return cfg;
}

// Byte-exact serialization of a request stream (%a keeps doubles lossless).
std::string stream_bytes(const std::vector<Request>& reqs) {
  std::string out;
  char buf[64];
  for (const Request& r : reqs) {
    std::snprintf(buf, sizeof(buf), "%lld@%a/%a:", static_cast<long long>(r.id),
                  r.arrival, r.deadline);
    out += buf;
    for (int t : r.prompt) out += std::to_string(t) + ",";
    out += "d" + std::to_string(r.decode_len) + ";";
  }
  return out;
}

WorkloadConfig small_workload(ArrivalPattern p) {
  WorkloadConfig w;
  w.pattern = p;
  w.rate = 120.0;
  w.duration = 0.25;
  w.prompt_min = 2;
  w.prompt_max = 3;
  w.decode_min = 2;
  w.decode_max = 4;
  w.slo_latency = 0.2;
  w.seed = 7;
  return w;
}

// ---- Arrival-process determinism (PR-3 matrix, extended to serving) --------

TEST(ServeWorkload, ArrivalStreamsBitIdenticalAcrossBackends) {
  EnvGuard spmd("TESSERACT_SPMD");
  EnvGuard workers("TESSERACT_WORKERS");
  const ArrivalPattern patterns[] = {ArrivalPattern::Poisson,
                                     ArrivalPattern::Bursty,
                                     ArrivalPattern::Diurnal};
  // Reference stream generated on the host, outside any backend.
  std::vector<std::string> reference;
  for (ArrivalPattern p : patterns) {
    reference.push_back(stream_bytes(generate_requests(small_workload(p), 16)));
    ASSERT_FALSE(reference.back().empty());
  }
  for (const Backend& b : kMatrix) {
    SCOPED_TRACE(b.label);
    apply_backend(b, spmd, workers);
    comm::World world(4, topo::MachineSpec::meluxina());
    std::vector<std::string> per_rank(4);
    world.run([&](comm::Communicator& c) {
      std::string mine;
      for (ArrivalPattern p : patterns) {
        mine += stream_bytes(generate_requests(small_workload(p), 16)) + "|";
      }
      per_rank[static_cast<std::size_t>(c.rank())] = mine;
    });
    std::string expect;
    for (const std::string& s : reference) expect += s + "|";
    for (int r = 0; r < 4; ++r) EXPECT_EQ(per_rank[static_cast<std::size_t>(r)], expect);
  }
}

TEST(ServeWorkload, SeedAndPatternChangeTheStream) {
  WorkloadConfig w = small_workload(ArrivalPattern::Poisson);
  const std::string base = stream_bytes(generate_requests(w, 16));
  w.seed = 8;
  EXPECT_NE(stream_bytes(generate_requests(w, 16)), base);
  w.seed = 7;
  w.pattern = ArrivalPattern::Bursty;
  EXPECT_NE(stream_bytes(generate_requests(w, 16)), base);
}

TEST(ServeWorkload, IntensityMatchesPattern) {
  WorkloadConfig w = small_workload(ArrivalPattern::Bursty);
  // First half of each period runs at burst_factor x base.
  EXPECT_DOUBLE_EQ(arrival_intensity(w, 0.01), w.rate * w.burst_factor);
  EXPECT_DOUBLE_EQ(arrival_intensity(w, w.burst_period * 0.75), w.rate);
  w.pattern = ArrivalPattern::Diurnal;
  EXPECT_DOUBLE_EQ(arrival_intensity(w, 0.0), w.rate);
  EXPECT_GT(arrival_intensity(w, w.diurnal_period * 0.25), w.rate);
  EXPECT_LT(arrival_intensity(w, w.diurnal_period * 0.75), w.rate);
}

TEST(ServeWorkload, EnvOverridesApply) {
  EnvGuard pattern("TESSERACT_SERVE_PATTERN");
  EnvGuard rate("TESSERACT_SERVE_RATE");
  EnvGuard slo("TESSERACT_SERVE_SLO_MS");
  pattern.set("diurnal");
  rate.set("55.5");
  slo.set("125");
  WorkloadConfig w = workload_from_env(WorkloadConfig{});
  EXPECT_EQ(w.pattern, ArrivalPattern::Diurnal);
  EXPECT_DOUBLE_EQ(w.rate, 55.5);
  EXPECT_DOUBLE_EQ(w.slo_latency, 0.125);
  rate.set("bogus");
  EXPECT_THROW(workload_from_env(WorkloadConfig{}), std::runtime_error);
}

// ---- Admission queue -------------------------------------------------------

Request make_request(std::int64_t id, double arrival, double slo) {
  Request r;
  r.id = id;
  r.arrival = arrival;
  r.deadline = arrival + slo;
  r.prompt = {1, 2};
  r.decode_len = 2;
  return r;
}

TEST(AdmissionQueue, ShedsOnDepthAndDeadline) {
  AdmissionQueue q(2);
  EXPECT_TRUE(q.offer(make_request(0, 0.0, 1.0), 0.0));
  EXPECT_TRUE(q.offer(make_request(1, 0.0, 1.0), 0.0));
  // Full queue -> queue_full shed.
  EXPECT_FALSE(q.offer(make_request(2, 0.0, 1.0), 0.0));
  // Already-expired request -> deadline shed, even with space after a pop.
  Request got;
  ASSERT_TRUE(q.pop(0.1, &got));
  EXPECT_EQ(got.id, 0);
  EXPECT_FALSE(q.offer(make_request(3, 0.0, 0.05), 0.2));
  EXPECT_EQ(q.shed().queue_full, 1);
  EXPECT_EQ(q.shed().deadline_expired, 1);
  ASSERT_EQ(q.rejects().size(), 2u);
  EXPECT_EQ(q.rejects()[0].first, 2);
  EXPECT_EQ(q.rejects()[0].second, RejectReason::QueueFull);
  EXPECT_EQ(q.rejects()[1].first, 3);
  EXPECT_EQ(q.rejects()[1].second, RejectReason::DeadlineExpired);
}

TEST(AdmissionQueue, ShedExpiredDropsOnlyExpired) {
  AdmissionQueue q(8);
  EXPECT_TRUE(q.offer(make_request(0, 0.0, 0.1), 0.0));
  EXPECT_TRUE(q.offer(make_request(1, 0.0, 1.0), 0.0));
  q.shed_expired(0.5);
  EXPECT_EQ(q.depth(), 1u);
  Request got;
  ASSERT_TRUE(q.pop(0.5, &got));
  EXPECT_EQ(got.id, 1);
  EXPECT_EQ(q.shed().deadline_expired, 1);
  // pop() sheds expired entries it walks over.
  EXPECT_TRUE(q.offer(make_request(2, 0.5, 0.1), 0.5));
  EXPECT_FALSE(q.pop(1.0, &got));
  EXPECT_EQ(q.shed().deadline_expired, 2);
}

// ---- KV-cache decode bit-identity ------------------------------------------

bool rows_bitwise_equal(const Tensor& full, std::int64_t b, std::int64_t t,
                        const Tensor& step, std::int64_t sb) {
  // full [B, S, V] row (b, t) vs step [B, 1, V] row (sb, 0).
  const std::int64_t v = full.dim(2);
  return std::memcmp(full.data() + (b * full.dim(1) + t) * v,
                     step.data() + sb * v,
                     static_cast<std::size_t>(v) * sizeof(float)) == 0;
}

TEST(KvDecode, SerialDecodeMatchesFullForwardBitwise) {
  const train::LmConfig cfg = small_lm();
  Rng wrng(3);
  train::LanguageModel model(cfg, wrng);
  const std::int64_t batch = 2;
  std::vector<int> tokens;
  Rng data_rng(11);
  for (std::int64_t i = 0; i < batch * cfg.seq; ++i) {
    tokens.push_back(static_cast<int>(
        data_rng.next_below(static_cast<std::uint64_t>(cfg.vocab))));
  }
  Tensor full = model.forward(tokens, batch);  // [b, s, vocab]

  train::LmDecodeState state = model.make_decode_state(batch);
  for (std::int64_t t = 0; t < cfg.seq; ++t) {
    std::vector<int> step_tokens;
    for (std::int64_t b = 0; b < batch; ++b) {
      step_tokens.push_back(tokens[static_cast<std::size_t>(b * cfg.seq + t)]);
    }
    Tensor logits = model.forward_step(step_tokens, state);
    for (std::int64_t b = 0; b < batch; ++b) {
      EXPECT_TRUE(rows_bitwise_equal(full, b, t, logits, b))
          << "position " << t << " batch " << b;
    }
  }
}

TEST(KvDecode, ResetSlotRestartsCleanly) {
  const train::LmConfig cfg = small_lm();
  Rng wrng(3);
  train::LanguageModel model(cfg, wrng);
  train::LmDecodeState state = model.make_decode_state(1);
  // Pollute the slot with a few tokens, then reset and replay a sequence:
  // logits must be bitwise those of a fresh state (dead rows really zeroed).
  std::vector<int> junk = {5};
  (void)model.forward_step(junk, state);
  (void)model.forward_step(junk, state);
  model.reset_slot(state, 0);
  std::vector<int> seq = {1, 4, 2};
  train::LmDecodeState fresh = model.make_decode_state(1);
  for (int t : seq) {
    std::vector<int> one = {t};
    Tensor a = model.forward_step(one, state);
    Tensor b = model.forward_step(one, fresh);
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          static_cast<std::size_t>(a.numel()) * sizeof(float)),
              0);
  }
}

TEST(KvDecode, TesseractDecodeMatchesFullForwardBitwise) {
  const train::LmConfig cfg = small_lm();
  const std::int64_t batch = 4;  // divides d*q = 2
  std::vector<int> tokens;
  Rng data_rng(13);
  for (std::int64_t i = 0; i < batch * cfg.seq; ++i) {
    tokens.push_back(static_cast<int>(
        data_rng.next_below(static_cast<std::uint64_t>(cfg.vocab))));
  }
  comm::World world(4, topo::MachineSpec::meluxina());
  std::vector<int> mismatches(4, 0);
  world.run([&](comm::Communicator& c) {
    par::TesseractContext ctx(c, /*q=*/2, /*d=*/1);
    Rng wrng(3);
    train::TesseractLanguageModel model(ctx, cfg, wrng);
    Tensor full = model.forward(tokens, batch);
    train::LmDecodeState state = model.make_decode_state(batch);
    int bad = 0;
    for (std::int64_t t = 0; t < cfg.seq; ++t) {
      std::vector<int> step_tokens;
      for (std::int64_t b = 0; b < batch; ++b) {
        step_tokens.push_back(
            tokens[static_cast<std::size_t>(b * cfg.seq + t)]);
      }
      Tensor logits = model.forward_step(step_tokens, state);
      for (std::int64_t b = 0; b < batch; ++b) {
        if (!rows_bitwise_equal(full, b, t, logits, b)) ++bad;
      }
    }
    mismatches[static_cast<std::size_t>(c.rank())] = bad;
  });
  for (int r = 0; r < 4; ++r) EXPECT_EQ(mismatches[static_cast<std::size_t>(r)], 0);
}

TEST(KvDecode, NeighborSlotChurnDoesNotPerturbLogits) {
  // Continuous batching's core guarantee: a sequence's logits do not depend
  // on what the other slots are doing (parked, mid-prefill, reset, ...).
  const train::LmConfig cfg = small_lm();
  Rng wrng(5);
  train::LanguageModel model(cfg, wrng);
  const std::vector<int> seq = {3, 7, 1, 9, 2};

  // Reference: slot 0 alone (slot 1 parked the whole time).
  train::LmDecodeState ref = model.make_decode_state(2);
  std::vector<Tensor> expected;
  for (int t : seq) {
    ref.lens[1] = 0;  // parked
    std::vector<int> toks = {t, 0};
    expected.push_back(model.forward_step(toks, ref));
  }

  // Same sequence in slot 0 while slot 1 churns: prefill of another
  // request, completion, reset, new request.
  train::LmDecodeState state = model.make_decode_state(2);
  const std::vector<int> churn = {8, 8, 6, 0, 12};
  model.reset_slot(state, 0);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (i == 2) model.reset_slot(state, 1);  // neighbor request swapped out
    std::vector<int> toks = {seq[i], churn[i]};
    Tensor got = model.forward_step(toks, state);
    // Compare slot 0's row only.
    const std::int64_t v = cfg.vocab;
    EXPECT_EQ(std::memcmp(got.data(), expected[i].data(),
                          static_cast<std::size_t>(v) * sizeof(float)),
              0)
        << "step " << i;
  }
}

// ---- End-to-end serving loop -----------------------------------------------

ServingConfig small_serving(ArrivalPattern p) {
  ServingConfig cfg;
  cfg.model = small_lm();
  cfg.q = 2;
  cfg.d = 1;
  cfg.slots = 4;
  cfg.queue_depth = 8;
  cfg.workload = small_workload(p);
  cfg.workload.rate = 80.0;
  cfg.workload.duration = 0.1;
  cfg.workload.prompt_max = 3;
  cfg.workload.decode_max = 4;
  return cfg;
}

std::string result_bytes(const ServingResult& r) {
  char buf[128];
  std::string out;
  std::snprintf(buf, sizeof(buf), "off=%lld shed=%lld/%lld steps=%lld tok=%lld ",
                static_cast<long long>(r.offered),
                static_cast<long long>(r.shed.queue_full),
                static_cast<long long>(r.shed.deadline_expired),
                static_cast<long long>(r.steps),
                static_cast<long long>(r.tokens_generated));
  out += buf;
  std::snprintf(buf, sizeof(buf), "mk=%a p50=%a p99=%a gp=%a ", r.makespan,
                r.p50, r.p99, r.goodput);
  out += buf;
  for (const CompletionRecord& c : r.completed) {
    std::snprintf(buf, sizeof(buf), "%lld:%a:%d;",
                  static_cast<long long>(c.id), c.latency, c.slo_ok ? 1 : 0);
    out += buf;
  }
  return out;
}

TEST(ServingLoop, DeterministicAcrossBackends) {
  EnvGuard spmd("TESSERACT_SPMD");
  EnvGuard workers("TESSERACT_WORKERS");
  const ServingConfig cfg = small_serving(ArrivalPattern::Bursty);
  std::vector<std::string> runs;
  for (const Backend& b : kMatrix) {
    SCOPED_TRACE(b.label);
    apply_backend(b, spmd, workers);
    comm::World world(4, topo::MachineSpec::meluxina());
    ServingResult res = run_serving(world, cfg);
    EXPECT_GT(res.completed.size() + static_cast<std::size_t>(res.shed.total()),
              0u);
    runs.push_back(result_bytes(res));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(ServingLoop, CompletesAndAccountsEveryRequest) {
  const ServingConfig cfg = small_serving(ArrivalPattern::Poisson);
  comm::World world(4, topo::MachineSpec::meluxina());
  ServingResult res = run_serving(world, cfg);
  EXPECT_EQ(static_cast<std::int64_t>(res.completed.size()) +
                res.shed.total(),
            res.offered);
  EXPECT_EQ(res.shed.total(), static_cast<std::int64_t>(res.rejects.size()));
  for (const CompletionRecord& c : res.completed) {
    EXPECT_GT(c.latency, 0.0);
    EXPECT_EQ(c.slo_ok, c.finish <= c.arrival + cfg.workload.slo_latency);
  }
  EXPECT_GT(res.makespan, 0.0);
  EXPECT_GE(res.p99, res.p50);
}

TEST(ServingLoop, StragglerInflatesTailLatency) {
  const ServingConfig cfg = small_serving(ArrivalPattern::Poisson);
  comm::World clean(4, topo::MachineSpec::meluxina());
  ServingResult base = run_serving(clean, cfg);

  fault::FaultPlan plan;
  plan.slow_ranks.push_back({0, 3.0});
  comm::World slow(4, topo::MachineSpec::meluxina());
  slow.install_fault_plan(plan);
  ServingResult hit = run_serving(slow, cfg);

  ASSERT_FALSE(base.completed.empty());
  ASSERT_FALSE(hit.completed.empty());
  EXPECT_GT(hit.p99, base.p99);
  EXPECT_GT(hit.makespan, base.makespan);
}

TEST(ServingLoop, ExactQuantileNearestRank) {
  std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.99), 5.0);
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.2), 1.0);   // ceil(1.0) -> rank 1
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.21), 2.0);  // just past the boundary
  EXPECT_DOUBLE_EQ(exact_quantile({}, 0.5), 0.0);
}

}  // namespace
}  // namespace tsr::serve
