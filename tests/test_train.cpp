// Training substrate: dataset determinism, ViT forward/backward, metrics,
// and the Fig. 7 property — the Tesseract-parallel ViT matches the serial
// baseline step for step.
#include <gtest/gtest.h>

#include "comm/communicator.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "parallel/context.hpp"
#include "tensor/kernels.hpp"
#include "train/dataset.hpp"
#include "train/metrics.hpp"
#include "train/trainer.hpp"
#include "train/vit.hpp"

namespace tsr::train {
namespace {

DatasetConfig small_data() {
  DatasetConfig cfg;
  cfg.classes = 4;
  cfg.samples_per_class = 8;
  cfg.image_size = 8;
  cfg.channels = 3;
  cfg.seed = 77;
  return cfg;
}

VitConfig small_vit() {
  VitConfig cfg;
  cfg.image_size = 8;
  cfg.patch_size = 4;
  cfg.channels = 3;
  cfg.hidden = 16;
  cfg.heads = 4;
  cfg.layers = 2;
  cfg.classes = 4;
  return cfg;
}

TEST(Dataset, SizesAndLabels) {
  SyntheticImageDataset data(small_data());
  EXPECT_EQ(data.size(), 32);
  EXPECT_EQ(data.classes(), 4);
  EXPECT_EQ(data.label(0), 0);
  EXPECT_EQ(data.label(31), 3);
}

TEST(Dataset, Deterministic) {
  SyntheticImageDataset a(small_data());
  SyntheticImageDataset b(small_data());
  std::vector<int> idx{0, 5, 17, 31};
  EXPECT_FLOAT_EQ(max_abs_diff(a.images(idx), b.images(idx)), 0.0f);
}

TEST(Dataset, DifferentSeedsDiffer) {
  DatasetConfig c1 = small_data();
  DatasetConfig c2 = small_data();
  c2.seed = 78;
  SyntheticImageDataset a(c1);
  SyntheticImageDataset b(c2);
  std::vector<int> idx{0};
  EXPECT_GT(max_abs_diff(a.images(idx), b.images(idx)), 0.0f);
}

TEST(Dataset, ClassesAreSeparable) {
  // Same-class images must be closer to each other than to other classes:
  // the signal the ViT is supposed to learn.
  SyntheticImageDataset data(small_data());
  std::vector<int> i0{0}, i1{1}, other{8};  // 0,1 class 0; 8 class 1
  Tensor a = data.images(i0);
  Tensor b = data.images(i1);
  Tensor c = data.images(other);
  double same = 0.0, diff = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    same += std::abs(a.at(i) - b.at(i));
    diff += std::abs(a.at(i) - c.at(i));
  }
  EXPECT_LT(same, diff);
}

TEST(Dataset, IndexOutOfRangeThrows) {
  SyntheticImageDataset data(small_data());
  std::vector<int> bad{99};
  EXPECT_THROW(data.images(bad), std::invalid_argument);
}

TEST(Metrics, ArgmaxAndAccuracy) {
  Tensor logits = Tensor::from({1, 5, 2, 9, 0, 1}, {3, 2});
  EXPECT_EQ(argmax_rows(logits), (std::vector<int>{1, 1, 1}));
  std::vector<int> targets{1, 0, 1};
  EXPECT_FLOAT_EQ(accuracy(logits, targets), 2.0f / 3.0f);
}

TEST(Vit, ForwardShapeAndDeterminism) {
  SyntheticImageDataset data(small_data());
  Rng rng(42);
  VisionTransformer model(small_vit(), rng);
  std::vector<int> idx{0, 8, 16, 24};
  Tensor logits1 = model.forward(data.images(idx));
  Tensor logits2 = model.forward(data.images(idx));
  EXPECT_EQ(logits1.shape(), (Shape{4, 4}));
  EXPECT_FLOAT_EQ(max_abs_diff(logits1, logits2), 0.0f);
}

TEST(Vit, LossDecreasesOverSteps) {
  SyntheticImageDataset data(small_data());
  Rng rng(42);
  VisionTransformer model(small_vit(), rng);
  nn::Adam opt(1e-3f);
  std::vector<int> idx(16);
  for (int i = 0; i < 16; ++i) idx[static_cast<std::size_t>(i)] = i * 2;
  std::vector<int> labels = data.labels(idx);
  Tensor images = data.images(idx);
  float first = 0.0f;
  float last = 0.0f;
  for (int step = 0; step < 15; ++step) {
    Tensor logits = model.forward(images);
    nn::LossResult res = nn::softmax_cross_entropy(logits, labels);
    if (step == 0) first = res.loss;
    last = res.loss;
    model.zero_grad();
    model.backward(res.dlogits);
    std::vector<nn::Param*> params = model.params();
    opt.step(params);
  }
  EXPECT_LT(last, first * 0.8f);
}

TEST(Vit, TesseractLogitsMatchSerial) {
  SyntheticImageDataset data(small_data());
  std::vector<int> idx{0, 4, 8, 12, 16, 20, 24, 28};
  Tensor images = data.images(idx);
  std::vector<int> labels = data.labels(idx);

  Rng srng(42);
  VisionTransformer serial(small_vit(), srng);
  Tensor ref = serial.forward(images);
  nn::LossResult sres = nn::softmax_cross_entropy(ref, labels);
  serial.zero_grad();
  serial.backward(sres.dlogits);

  comm::World world(8);
  world.run([&](comm::Communicator& c) {
    par::TesseractContext ctx(c, 2, 2);
    Rng wrng(42);
    TesseractVisionTransformer model(ctx, small_vit(), wrng);
    Tensor logits = model.forward(images);
    EXPECT_LT(max_abs_diff(logits, ref), 2e-3f);
    nn::LossResult res = nn::softmax_cross_entropy(logits, labels);
    model.zero_grad();
    model.backward(res.dlogits);
  });
}

TEST(Trainer, SerialAndTesseractCurvesCoincide) {
  // The Fig. 7 claim in miniature: identical recipes, identical seeds;
  // the Tesseract run must produce the same loss/accuracy trajectory up to
  // floating-point reduction order.
  DatasetConfig dcfg = small_data();
  VitConfig vcfg = small_vit();
  TrainConfig tcfg;
  tcfg.epochs = 2;
  tcfg.batch_size = 8;
  tcfg.lr = 1e-3f;

  std::vector<EpochStats> serial = train_vit_serial(
      SyntheticImageDataset(dcfg), vcfg, tcfg);
  std::vector<EpochStats> parallel = train_vit_tesseract(
      SyntheticImageDataset(dcfg), vcfg, tcfg, /*q=*/2, /*d=*/2);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t e = 0; e < serial.size(); ++e) {
    EXPECT_NEAR(serial[e].loss, parallel[e].loss, 5e-2f) << "epoch " << e;
    EXPECT_NEAR(serial[e].accuracy, parallel[e].accuracy, 0.15f)
        << "epoch " << e;
  }
}

TEST(Trainer, RejectsIndivisibleBatch) {
  DatasetConfig dcfg = small_data();
  TrainConfig tcfg;
  tcfg.batch_size = 6;  // not divisible by d*q = 4
  EXPECT_THROW(train_vit_tesseract(SyntheticImageDataset(dcfg), small_vit(),
                                   tcfg, 2, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace tsr::train
