// Pipeline parallelism over Tesseract groups (paper Section 3.4 / Fig. 6):
// GPipe micro-batching against the serial reference, cache-stack LIFO
// semantics, hybrid data x pipeline x Tesseract arrangements, and the
// emergent pipelining in the simulated timeline.
#include <gtest/gtest.h>

#include "comm/communicator.hpp"
#include "nn/transformer.hpp"
#include "parallel/dist.hpp"
#include "parallel/pipeline.hpp"
#include "perf/trace.hpp"
#include "tensor/init.hpp"
#include "tensor/kernels.hpp"

namespace tsr::par {
namespace {

constexpr float kTol = 5e-3f;

// Slices a global [b, s, h] batch into `micros` equal micro-batches.
std::vector<Tensor> micro_split(const Tensor& x, int micros) {
  const std::int64_t mb = x.dim(0) / micros;
  const std::int64_t s = x.dim(1);
  const std::int64_t h = x.dim(2);
  std::vector<Tensor> out;
  const Tensor m2 = x.reshape({x.dim(0) * s, h});
  for (int i = 0; i < micros; ++i) {
    out.push_back(
        slice_block(m2, i * mb * s, 0, mb * s, h).reshape({mb, s, h}));
  }
  return out;
}

struct PipeCase {
  int stages;
  int q;
  int d;
  int micros;
};

class PipelineSweep : public ::testing::TestWithParam<PipeCase> {};

TEST_P(PipelineSweep, MatchesSerialStack) {
  const auto [stages, q, d, micros] = GetParam();
  const std::int64_t h = 8 * q;
  const std::int64_t heads = 2 * q;
  const std::int64_t s = 2;
  const std::int64_t mb = static_cast<std::int64_t>(q) * d * 2;  // per micro
  const std::int64_t b = mb * micros;
  const int layers_per_stage = 2;

  Rng data_rng(11);
  Tensor x = random_normal({b, s, h}, data_rng);
  Tensor dy = random_normal({b, s, h}, data_rng);

  // Serial reference: the full stack, run micro-by-micro with gradient
  // accumulation (mathematically identical to one big batch for fwd/bwd).
  Rng serial_rng(2200);
  nn::TransformerEncoder serial(
      {h, heads, stages * layers_per_stage, 4}, serial_rng);
  std::vector<Tensor> x_micros = micro_split(x, micros);
  std::vector<Tensor> dy_micros = micro_split(dy, micros);
  std::vector<Tensor> y_ref;
  std::vector<Tensor> dx_ref;
  for (int m = 0; m < micros; ++m) {
    y_ref.push_back(serial.forward(x_micros[static_cast<std::size_t>(m)]));
    dx_ref.push_back(serial.backward(dy_micros[static_cast<std::size_t>(m)]));
  }

  PipelineConfig cfg;
  cfg.stages = stages;
  cfg.layers_per_stage = layers_per_stage;
  cfg.q = q;
  cfg.d = d;
  cfg.micro_batch = mb;
  cfg.seq = s;
  cfg.hidden = h;
  cfg.heads = heads;

  comm::World world(cfg.total_ranks());
  world.run([&](comm::Communicator& c) {
    Rng wrng(2200);
    TesseractPipeline pipe(c, cfg, wrng);

    // Local shards of the micro inputs / output grads for this rank's grid.
    std::vector<Tensor> in_local(static_cast<std::size_t>(micros));
    std::vector<Tensor> gr_local(static_cast<std::size_t>(micros));
    for (int m = 0; m < micros; ++m) {
      in_local[static_cast<std::size_t>(m)] = distribute_activation(
          pipe.context().comms(), x_micros[static_cast<std::size_t>(m)]);
      gr_local[static_cast<std::size_t>(m)] = distribute_activation(
          pipe.context().comms(), dy_micros[static_cast<std::size_t>(m)]);
    }

    std::vector<Tensor> outs = pipe.forward(in_local);
    std::vector<Tensor> dxs = pipe.backward(gr_local);

    if (pipe.is_last_stage()) {
      for (int m = 0; m < micros; ++m) {
        Tensor y = collect_activation(pipe.context().comms(),
                                      outs[static_cast<std::size_t>(m)], mb, s, h);
        EXPECT_LT(max_abs_diff(y, y_ref[static_cast<std::size_t>(m)]), kTol)
            << "micro " << m;
      }
    }
    if (pipe.is_first_stage()) {
      for (int m = 0; m < micros; ++m) {
        Tensor dx = collect_activation(pipe.context().comms(),
                                       dxs[static_cast<std::size_t>(m)], mb, s, h);
        EXPECT_LT(max_abs_diff(dx, dx_ref[static_cast<std::size_t>(m)]), kTol)
            << "micro " << m;
      }
    }

    // Weight gradients accumulated over micros must match the serial stack:
    // check the first owned layer's fc1 block.
    const int first_layer = pipe.stage() * layers_per_stage;
    Tensor ref_block = pdg::distribute_b_layout(
        pipe.context().comms(),
        serial.layers()[static_cast<std::size_t>(first_layer)]->ffn.fc1.w.grad);
    EXPECT_LT(
        max_abs_diff(pipe.layers().front()->ffn.fc1.w.grad, ref_block), kTol);
  });
}

INSTANTIATE_TEST_SUITE_P(Configs, PipelineSweep,
                         ::testing::Values(PipeCase{2, 1, 1, 2},
                                           PipeCase{2, 2, 1, 2},
                                           PipeCase{2, 2, 2, 2},
                                           PipeCase{3, 1, 1, 3},
                                           PipeCase{2, 2, 1, 4}));

TEST(Pipeline, RejectsWrongRankCount) {
  PipelineConfig cfg;
  cfg.stages = 2;
  cfg.q = 2;
  cfg.d = 1;
  cfg.micro_batch = 2;
  cfg.seq = 2;
  cfg.hidden = 16;
  cfg.heads = 4;
  comm::World world(4);  // needs 2 * 4 = 8
  EXPECT_THROW(world.run([&](comm::Communicator& c) {
                 Rng rng(1);
                 TesseractPipeline pipe(c, cfg, rng);
               }),
               std::invalid_argument);
}

// The Fig. 6 arrangement in full: 32 GPUs = data parallel 2 x pipeline 2 x
// Tesseract [2,2,2]. Two data-parallel replicas of a 2-stage pipeline each
// run their micro-batches and average gradients; the result must equal the
// serial model's gradient on the combined batch.
TEST(Pipeline, Fig6HybridThirtyTwoRanks) {
  const std::int64_t h = 16, heads = 4, s = 2, mb = 8;
  const int micros = 2;
  const int layers_per_stage = 1;
  PipelineConfig cfg{/*stages=*/2, layers_per_stage, /*q=*/2, /*d=*/2,
                     mb, s, h, heads, 4};
  const int group = cfg.total_ranks();  // 16
  const int total = 2 * group;          // 32, as in Fig. 6

  Rng data_rng(12);
  // Each DP replica gets its own micro-batches.
  std::vector<Tensor> x0, x1, g0, g1;
  for (int m = 0; m < micros; ++m) {
    x0.push_back(random_normal({mb, s, h}, data_rng));
    g0.push_back(random_normal({mb, s, h}, data_rng));
  }
  for (int m = 0; m < micros; ++m) {
    x1.push_back(random_normal({mb, s, h}, data_rng));
    g1.push_back(random_normal({mb, s, h}, data_rng));
  }

  // Serial reference gradient: average of the two replicas' accumulated
  // gradients on layer 0's fc1.
  Rng serial_rng(2300);
  nn::TransformerEncoder serial({h, heads, 2 * layers_per_stage, 4}, serial_rng);
  for (int m = 0; m < micros; ++m) {
    (void)serial.forward(x0[static_cast<std::size_t>(m)]);
    (void)serial.backward(g0[static_cast<std::size_t>(m)]);
  }
  Tensor grad0 = serial.layers()[0]->ffn.fc1.w.grad.clone();
  serial.zero_grad();
  for (int m = 0; m < micros; ++m) {
    (void)serial.forward(x1[static_cast<std::size_t>(m)]);
    (void)serial.backward(g1[static_cast<std::size_t>(m)]);
  }
  Tensor grad1 = serial.layers()[0]->ffn.fc1.w.grad.clone();
  Tensor grad_avg = scaled(add(grad0, grad1), 0.5f);

  comm::World world(total);
  world.run([&](comm::Communicator& c) {
    const int replica = c.rank() / group;
    comm::Communicator pp_group = c.split(replica, c.rank());
    comm::Communicator dp_pair = c.split(c.rank() % group, replica);

    Rng wrng(2300);
    TesseractPipeline pipe(pp_group, cfg, wrng);
    auto& xs = replica == 0 ? x0 : x1;
    auto& gs = replica == 0 ? g0 : g1;

    std::vector<Tensor> in_local(static_cast<std::size_t>(micros));
    std::vector<Tensor> gr_local(static_cast<std::size_t>(micros));
    for (int m = 0; m < micros; ++m) {
      in_local[static_cast<std::size_t>(m)] = distribute_activation(
          pipe.context().comms(), xs[static_cast<std::size_t>(m)]);
      gr_local[static_cast<std::size_t>(m)] = distribute_activation(
          pipe.context().comms(), gs[static_cast<std::size_t>(m)]);
    }
    (void)pipe.forward(in_local);
    (void)pipe.backward(gr_local);

    // Data-parallel gradient averaging across the two replicas.
    Tensor& grad = pipe.layers().front()->ffn.fc1.w.grad;
    dp_pair.all_reduce(grad);
    scale(grad, 0.5f);

    if (pipe.stage() == 0) {
      Tensor ref_block =
          pdg::distribute_b_layout(pipe.context().comms(), grad_avg);
      EXPECT_LT(max_abs_diff(grad, ref_block), kTol);
    }
  });
}

// Pipelining is visible in the simulated timeline: with several micro
// batches, the two-stage pipeline's makespan is far below 2x the serial
// stage time (the stages overlap), but above the single-stage time (the
// GPipe bubble).
TEST(Pipeline, SimulatedTimelineOverlaps) {
  const std::int64_t h = 16, heads = 4, s = 2, mb = 2;
  const int micros = 8;
  PipelineConfig cfg{/*stages=*/2, /*layers_per_stage=*/1, /*q=*/1, /*d=*/1,
                     mb, s, h, heads, 4};

  Rng data_rng(13);
  std::vector<Tensor> micros_in;
  for (int m = 0; m < micros; ++m) {
    micros_in.push_back(random_normal({mb, s, h}, data_rng));
  }

  comm::World world(cfg.total_ranks(), topo::MachineSpec::meluxina());
  perf::Measurement two_stage = perf::measure(world, [&](comm::Communicator& c) {
    Rng wrng(1);
    TesseractPipeline pipe(c, cfg, wrng);
    (void)pipe.forward(micros_in);
  });

  // The same 2-layer model on ONE stage (no pipeline): its makespan is the
  // serial-forward cost of all micros through both layers.
  PipelineConfig solo = cfg;
  solo.stages = 1;
  solo.layers_per_stage = 2;
  comm::World world1(solo.total_ranks(), topo::MachineSpec::meluxina());
  perf::Measurement one_stage = perf::measure(world1, [&](comm::Communicator& c) {
    Rng wrng(1);
    TesseractPipeline pipe(c, solo, wrng);
    (void)pipe.forward(micros_in);
  });

  // Perfect overlap would halve the time (plus one bubble slot); no overlap
  // would equal it. Demand at least 25% savings and a nonzero bubble.
  EXPECT_LT(two_stage.sim_seconds, 0.75 * one_stage.sim_seconds);
  EXPECT_GT(two_stage.sim_seconds, 0.5 * one_stage.sim_seconds);
}

}  // namespace
}  // namespace tsr::par
