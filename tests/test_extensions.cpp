// Extension features: activation checkpointing (identical gradients, lower
// cache memory, higher recompute time), LIFO cache-stack semantics, and the
// LAMB optimizer.
#include <gtest/gtest.h>

#include "comm/communicator.hpp"
#include "nn/optimizer.hpp"
#include "nn/transformer.hpp"
#include "parallel/dist.hpp"
#include "parallel/tesseract_transformer.hpp"
#include "perf/trace.hpp"
#include "tensor/init.hpp"
#include "tensor/kernels.hpp"

namespace tsr::par {
namespace {

constexpr float kTol = 5e-3f;

TEST(Checkpointing, GradientsMatchNonCheckpointed) {
  const std::int64_t b = 8, s = 2, h = 16, heads = 4, layers = 3;
  Rng data_rng(21);
  Tensor x = random_normal({b, s, h}, data_rng);
  Tensor dy = random_normal({b, s, h}, data_rng);

  Tensor grad_plain;
  Tensor dx_plain;
  {
    comm::World world(8);
    world.run([&](comm::Communicator& c) {
      TesseractContext ctx(c, 2, 2);
      Rng wrng(3000);
      TesseractTransformer model(ctx, h, heads, layers, wrng);
      (void)model.forward(distribute_activation(ctx.comms(), x));
      Tensor dx = model.backward(distribute_activation(ctx.comms(), dy));
      if (c.rank() == 0) {
        grad_plain = model.layers()[1]->ffn.fc1.w.grad.clone();
        dx_plain = dx.clone();
      }
    });
  }
  {
    comm::World world(8);
    world.run([&](comm::Communicator& c) {
      TesseractContext ctx(c, 2, 2);
      Rng wrng(3000);
      TesseractTransformer model(ctx, h, heads, layers, wrng, 4,
                                 /*activation_checkpointing=*/true);
      EXPECT_TRUE(model.checkpointing());
      (void)model.forward(distribute_activation(ctx.comms(), x));
      Tensor dx = model.backward(distribute_activation(ctx.comms(), dy));
      if (c.rank() == 0) {
        EXPECT_LT(max_abs_diff(model.layers()[1]->ffn.fc1.w.grad, grad_plain),
                  kTol);
        EXPECT_LT(max_abs_diff(dx, dx_plain), kTol);
      }
    });
  }
}

TEST(Checkpointing, CachesSmallerAfterForward) {
  const std::int64_t b = 8, s = 4, h = 16, heads = 4, layers = 4;
  Rng data_rng(22);
  Tensor x = random_normal({b, s, h}, data_rng);

  std::int64_t plain_bytes = -1;
  std::int64_t ckpt_bytes = -1;
  comm::World world(8);
  world.run([&](comm::Communicator& c) {
    TesseractContext ctx(c, 2, 2);
    Rng wrng(3001);
    TesseractTransformer plain(ctx, h, heads, layers, wrng);
    Rng wrng2(3001);
    TesseractTransformer ckpt(ctx, h, heads, layers, wrng2, 4, true);
    Tensor xl = distribute_activation(ctx.comms(), x);
    (void)plain.forward(xl);
    (void)ckpt.forward(xl);
    if (c.rank() == 0) {
      plain_bytes = plain.cached_bytes();
      ckpt_bytes = ckpt.cached_bytes();
    }
  });
  // Checkpointing keeps one input per layer instead of every intermediate
  // (xhat, Q/K/V, attention weights, GELU input, ...).
  EXPECT_GT(plain_bytes, 4 * ckpt_bytes);
  EXPECT_GT(ckpt_bytes, 0);
}

TEST(Checkpointing, RecomputeCostsSimulatedTime) {
  const std::int64_t b = 4, s = 2, h = 16, heads = 4, layers = 2;
  Rng data_rng(23);
  Tensor x = random_normal({b, s, h}, data_rng);
  Tensor dy = random_normal({b, s, h}, data_rng);

  auto run = [&](bool ckpt) {
    comm::World world(4, topo::MachineSpec::meluxina());
    perf::Measurement m = perf::measure(world, [&](comm::Communicator& c) {
      TesseractContext ctx(c, 2, 1);
      Rng wrng(3002);
      TesseractTransformer model(ctx, h, heads, layers, wrng, 4, ckpt);
      (void)model.forward(distribute_activation(ctx.comms(), x));
      (void)model.backward(distribute_activation(ctx.comms(), dy));
    });
    return m.sim_seconds;
  };
  const double plain = run(false);
  const double ckpt = run(true);
  // Recompute re-runs every forward: fwd+bwd goes from ~3 units of work to
  // ~4 — demand a measurable but sub-2x increase.
  EXPECT_GT(ckpt, 1.05 * plain);
  EXPECT_LT(ckpt, 2.0 * plain);
}

TEST(CacheStacks, InterleavedForwardsBackwardLifo) {
  // Two forwards in flight, backwards in reverse order: the micro-batching
  // contract. Results must equal running each pair sequentially.
  const std::int64_t b = 4, s = 2, h = 16, heads = 4;
  Rng data_rng(24);
  Tensor x1 = random_normal({b, s, h}, data_rng);
  Tensor x2 = random_normal({b, s, h}, data_rng);
  Tensor dy1 = random_normal({b, s, h}, data_rng);
  Tensor dy2 = random_normal({b, s, h}, data_rng);

  Tensor dx1_seq, dx2_seq, grad_seq;
  comm::World world(4);
  world.run([&](comm::Communicator& c) {
    TesseractContext ctx(c, 2, 1);
    // Sequential reference.
    Rng wrng(3003);
    TesseractTransformerLayer seq(ctx, h, heads, wrng);
    Tensor x1l = distribute_activation(ctx.comms(), x1);
    Tensor x2l = distribute_activation(ctx.comms(), x2);
    Tensor dy1l = distribute_activation(ctx.comms(), dy1);
    Tensor dy2l = distribute_activation(ctx.comms(), dy2);
    (void)seq.forward(x1l);
    Tensor dx1 = seq.backward(dy1l);
    (void)seq.forward(x2l);
    Tensor dx2 = seq.backward(dy2l);

    // Pipelined order: fwd1, fwd2, bwd2, bwd1.
    Rng wrng2(3003);
    TesseractTransformerLayer pipe(ctx, h, heads, wrng2);
    (void)pipe.forward(x1l);
    (void)pipe.forward(x2l);
    Tensor dx2p = pipe.backward(dy2l);
    Tensor dx1p = pipe.backward(dy1l);

    EXPECT_LT(max_abs_diff(dx1, dx1p), 1e-5f);
    EXPECT_LT(max_abs_diff(dx2, dx2p), 1e-5f);
    EXPECT_LT(max_abs_diff(seq.ffn.fc1.w.grad, pipe.ffn.fc1.w.grad), 1e-5f);
  });
}

TEST(CacheStacks, BackwardWithoutForwardThrows) {
  comm::World world(1);
  world.run([&](comm::Communicator& c) {
    TesseractContext ctx(c, 1, 1);
    Rng rng(1);
    TesseractLinear lin(ctx, 4, 4, rng);
    EXPECT_THROW(lin.backward(Tensor::ones({2, 4})), std::invalid_argument);
  });
}

}  // namespace
}  // namespace tsr::par

namespace tsr::nn {
namespace {

TEST(Lamb, FirstStepUsesTrustRatio) {
  Param p({4});
  p.value.fill(2.0f);  // ||w|| = 4
  p.grad.fill(1.0f);
  Lamb opt(0.1f);
  std::vector<Param*> params{&p};
  opt.step(params);
  // update direction r ~= 1 per element (bias-corrected Adam step of
  // uniform grads), ||r|| = 2, trust = 4/2 = 2 -> step = lr * 2 * 1 = 0.2.
  EXPECT_NEAR(p.value.at(0), 2.0f - 0.2f, 1e-3f);
}

TEST(Lamb, ZeroWeightFallsBackToUnitTrust) {
  Param p({2});
  p.value.fill(0.0f);
  p.grad.fill(1.0f);
  Lamb opt(0.01f);
  std::vector<Param*> params{&p};
  opt.step(params);
  EXPECT_NEAR(p.value.at(0), -0.01f, 1e-4f);
}

TEST(Lamb, ConvergesOnQuadratic) {
  // Minimize ||w - target||^2 with LAMB; it should make steady progress.
  Param p({8});
  Rng rng(5);
  normal_init(p.value, rng, 0.0, 1.0);
  Tensor target = random_normal({8}, rng);
  Lamb opt(0.05f);
  std::vector<Param*> params{&p};
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 100; ++step) {
    float loss = 0.0f;
    for (std::int64_t i = 0; i < 8; ++i) {
      const float d = p.value.at(i) - target.at(i);
      loss += d * d;
      p.grad.at(i) = 2.0f * d;
    }
    if (step == 0) first = loss;
    last = loss;
    opt.step(params);
    p.zero_grad();
  }
  EXPECT_LT(last, 0.1f * first);
}

TEST(Lamb, WeightDecayEntersUpdate) {
  Param p({2});
  p.value.fill(1.0f);
  p.grad.fill(0.0f);
  Lamb opt(0.1f, 0.9f, 0.999f, 1e-6f, /*weight_decay=*/0.5f);
  std::vector<Param*> params{&p};
  opt.step(params);
  // r = wd * w = 0.5 per element; trust = ||w||/||r|| = 2 -> step 0.1*2*0.5.
  EXPECT_NEAR(p.value.at(0), 1.0f - 0.1f, 1e-4f);
}

}  // namespace
}  // namespace tsr::nn
