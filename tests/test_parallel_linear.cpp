// TesseractLinear against nn::Linear across grid shapes: identical
// initialization, forward outputs, input gradients, weight/bias gradients,
// plus the bias ownership protocol of Section 3.2.2.
#include <gtest/gtest.h>

#include "comm/communicator.hpp"
#include "nn/linear.hpp"
#include "parallel/dist.hpp"
#include "parallel/tesseract_linear.hpp"
#include "tensor/init.hpp"
#include "tensor/kernels.hpp"

namespace tsr::par {
namespace {

constexpr float kTol = 5e-4f;

struct GridCase {
  int q;
  int d;
};

class TesseractLinearSweep : public ::testing::TestWithParam<GridCase> {};

TEST_P(TesseractLinearSweep, MatchesSerialEndToEnd) {
  const auto [q, d] = GetParam();
  const std::int64_t b = 2 * q * d;
  const std::int64_t s = 3;
  const std::int64_t in = 4 * q;
  const std::int64_t out = 8 * q;

  Rng data_rng(50);
  Tensor x = random_normal({b, s, in}, data_rng);
  Tensor dy = random_normal({b, s, out}, data_rng);

  Rng serial_rng(123);
  nn::Linear serial(in, out, serial_rng);
  // Make the serial bias non-trivial, mirrored below in the parallel run.
  Rng brng(7);
  normal_init(serial.b.value, brng, 0.0, 0.1);
  Tensor y_ref = serial.forward(x);
  Tensor dx_ref = serial.backward(dy);

  comm::World world(q * q * d);
  world.run([&](comm::Communicator& c) {
    TesseractContext ctx(c, q, d);
    Rng wrng(123);
    Tensor full_w({in, out});
    xavier_uniform(full_w, wrng);
    Rng brng2(7);
    Tensor full_b({out});
    normal_init(full_b, brng2, 0.0, 0.1);
    TesseractLinear lin(ctx, full_w, full_b);

    // Shard the activation exactly as Fig. 4 prescribes.
    Tensor xl = distribute_activation(ctx.comms(), x);
    Tensor yl = lin.forward(xl);
    Tensor y = collect_activation(ctx.comms(), yl, b, s, out);
    EXPECT_LT(max_abs_diff(y, y_ref), kTol);

    Tensor dyl = distribute_activation(ctx.comms(), dy);
    Tensor dxl = lin.backward(dyl);
    Tensor dx = collect_activation(ctx.comms(), dxl, b, s, in);
    EXPECT_LT(max_abs_diff(dx, dx_ref), kTol);

    // Weight gradient: my B-layout block of the serial gradient.
    Tensor dw_ref_block = pdg::distribute_b_layout(ctx.comms(), serial.w.grad);
    EXPECT_LT(max_abs_diff(lin.w.grad, dw_ref_block), kTol);

    // Bias gradient: held on grid row 0 only, sharded by column.
    if (lin.owns_bias()) {
      const std::int64_t lout = out / q;
      Tensor db_ref = slice_block(serial.b.grad.reshape({1, out}), 0,
                                  ctx.j() * lout, 1, lout)
                          .reshape({lout});
      EXPECT_LT(max_abs_diff(lin.b.grad, db_ref), kTol);
    } else {
      EXPECT_FLOAT_EQ(max_abs(lin.b.grad), 0.0f);
    }
  });
}

TEST_P(TesseractLinearSweep, RngCtorMatchesSerialInit) {
  const auto [q, d] = GetParam();
  const std::int64_t in = 4 * q;
  const std::int64_t out = 4 * q;
  Rng serial_rng(321);
  nn::Linear serial(in, out, serial_rng);
  comm::World world(q * q * d);
  world.run([&](comm::Communicator& c) {
    TesseractContext ctx(c, q, d);
    Rng wrng(321);
    TesseractLinear lin(ctx, in, out, wrng);
    Tensor ref_block = pdg::distribute_b_layout(ctx.comms(), serial.w.value);
    EXPECT_FLOAT_EQ(max_abs_diff(lin.w.value, ref_block), 0.0f);
  });
}

TEST_P(TesseractLinearSweep, GradAccumulationAcrossSteps) {
  const auto [q, d] = GetParam();
  const std::int64_t b = q * d;
  const std::int64_t in = 2 * q;
  const std::int64_t out = 2 * q;
  Rng data_rng(60);
  Tensor x = random_normal({b, 2, in}, data_rng);
  Tensor dy = random_normal({b, 2, out}, data_rng);
  comm::World world(q * q * d);
  world.run([&](comm::Communicator& c) {
    TesseractContext ctx(c, q, d);
    Rng wrng(1);
    TesseractLinear lin(ctx, in, out, wrng);
    Tensor xl = distribute_activation(ctx.comms(), x);
    Tensor dyl = distribute_activation(ctx.comms(), dy);
    (void)lin.forward(xl);
    (void)lin.backward(dyl);
    Tensor once = lin.w.grad.clone();
    (void)lin.forward(xl);
    (void)lin.backward(dyl);
    EXPECT_LT(max_abs_diff(lin.w.grad, scaled(once, 2.0f)), kTol);
    lin.zero_grad();
    EXPECT_FLOAT_EQ(max_abs(lin.w.grad), 0.0f);
  });
}

INSTANTIATE_TEST_SUITE_P(Grids, TesseractLinearSweep,
                         ::testing::Values(GridCase{1, 1}, GridCase{2, 1},
                                           GridCase{2, 2}, GridCase{3, 1},
                                           GridCase{3, 2}, GridCase{3, 3},
                                           GridCase{4, 2}));

TEST(TesseractLinear, NoBiasHasOneParam) {
  comm::World world(4);
  world.run([&](comm::Communicator& c) {
    TesseractContext ctx(c, 2, 1);
    Rng rng(1);
    Tensor w({4, 4});
    xavier_uniform(w, rng);
    TesseractLinear lin(ctx, w, Tensor());
    EXPECT_FALSE(lin.has_bias());
    EXPECT_EQ(lin.params().size(), 1u);
  });
}

TEST(TesseractLinear, BiasParamOnlyOnRowZero) {
  comm::World world(8);
  world.run([&](comm::Communicator& c) {
    TesseractContext ctx(c, 2, 2);
    Rng rng(1);
    TesseractLinear lin(ctx, 4, 4, rng);
    if (ctx.i() == 0) {
      EXPECT_TRUE(lin.owns_bias());
      EXPECT_EQ(lin.params().size(), 2u);
    } else {
      EXPECT_FALSE(lin.owns_bias());
      EXPECT_EQ(lin.params().size(), 1u);
    }
  });
}

TEST(TesseractLinear, RejectsIndivisibleFeatures) {
  comm::World world(4);
  EXPECT_THROW(world.run([&](comm::Communicator& c) {
                 TesseractContext ctx(c, 2, 1);
                 Rng rng(1);
                 TesseractLinear lin(ctx, 5, 4, rng);  // 5 % 2 != 0
               }),
               std::invalid_argument);
}

TEST(QkvBlockedLayout, PermutationIsBijective) {
  // Every serial column must land somewhere, exactly once.
  const std::int64_t h = 12;
  Tensor w({1, 3 * h});
  for (std::int64_t c = 0; c < 3 * h; ++c) w.at(0, c) = static_cast<float>(c);
  Tensor p = qkv_blocked_layout(w, /*blocks=*/2, /*heads=*/4);
  std::vector<int> seen(static_cast<std::size_t>(3 * h), 0);
  for (std::int64_t c = 0; c < 3 * h; ++c) {
    seen[static_cast<std::size_t>(p.at(0, c))]++;
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(QkvBlockedLayout, BlockContainsItsHeadsQKV) {
  // h = 8, 4 heads (hd = 2), 2 blocks: block 0 = heads {0,1}.
  const std::int64_t h = 8;
  Tensor w({1, 3 * h});
  for (std::int64_t c = 0; c < 3 * h; ++c) w.at(0, c) = static_cast<float>(c);
  Tensor p = qkv_blocked_layout(w, 2, 4);
  // Block 0 layout: [Q head0 | Q head1 | K head0 | K head1 | V head0 | V head1].
  EXPECT_FLOAT_EQ(p.at(0, 0), 0.0f);       // Q head0 elem0 (serial col 0)
  EXPECT_FLOAT_EQ(p.at(0, 4), 8.0f);       // K head0 elem0 (serial col h)
  EXPECT_FLOAT_EQ(p.at(0, 8), 16.0f);      // V head0 elem0 (serial col 2h)
  // Block 1 starts with Q head2 (serial col 4).
  EXPECT_FLOAT_EQ(p.at(0, 12), 4.0f);
}

TEST(QkvBlockedLayout, BiasVariant) {
  Tensor b({6});  // h = 2, 2 heads, hd = 1
  for (std::int64_t i = 0; i < 6; ++i) b.at(i) = static_cast<float>(i);
  Tensor p = qkv_blocked_layout(b, 2, 2);
  // Block 0 = [Q h0, K h0, V h0] = serial {0, 2, 4}.
  EXPECT_FLOAT_EQ(p.at(0), 0.0f);
  EXPECT_FLOAT_EQ(p.at(1), 2.0f);
  EXPECT_FLOAT_EQ(p.at(2), 4.0f);
  EXPECT_FLOAT_EQ(p.at(3), 1.0f);
}

}  // namespace
}  // namespace tsr::par
