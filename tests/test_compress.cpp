// bf16 wire compression: encode/decode identity against the bf16 rounding
// primitive, the compressed all-reduce's all-rank agreement, its halved wire
// bytes, bit-identity across all three scheduler backends, tolerance vs the
// uncompressed reduction, and the TESSERACT_COMPRESS_DEPTH gating of the
// Tesseract depth sites.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/compress.hpp"
#include "pdgemm/tesseract_mm.hpp"
#include "tensor/bf16.hpp"

namespace tsr::comm {
namespace {

// Scoped environment override (same idiom as test_fault.cpp).
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    if (const char* v = std::getenv(name)) {
      had_ = true;
      old_ = v;
    }
  }
  ~EnvGuard() {
    if (had_) {
      setenv(name_, old_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }
  void set(const std::string& value) { setenv(name_, value.c_str(), 1); }
  void clear() { unsetenv(name_); }

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

std::vector<float> rank_data(int rank, std::int64_t n) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::uint32_t h =
        (static_cast<std::uint32_t>(i) + 1000u * static_cast<std::uint32_t>(rank) + 1u) *
        2654435761u;
    // Mixed signs and magnitudes, gradient-like.
    v[static_cast<std::size_t>(i)] =
        (static_cast<float>(h % 20001u) - 10000.0f) / 10000.0f;
  }
  return v;
}

// ---- encode/decode ---------------------------------------------------------

TEST(Bf16Wire, PackedCountIsCeilHalf) {
  EXPECT_EQ(bf16_packed_count(0), 0);
  EXPECT_EQ(bf16_packed_count(1), 1);
  EXPECT_EQ(bf16_packed_count(2), 1);
  EXPECT_EQ(bf16_packed_count(7), 4);
  EXPECT_EQ(bf16_packed_count(8), 4);
}

TEST(Bf16Wire, RoundTripEqualsBf16RoundExactly) {
  for (std::int64_t n : {1, 2, 7, 64, 129}) {
    const std::vector<float> src = rank_data(3, n);
    std::vector<float> wire(static_cast<std::size_t>(bf16_packed_count(n)));
    std::vector<float> back(static_cast<std::size_t>(n));
    bf16_compress(src.data(), n, wire.data());
    bf16_decompress(wire.data(), n, back.data());
    for (std::int64_t i = 0; i < n; ++i) {
      // Exact: decode(encode(x)) is bf16_round(x) bit for bit.
      EXPECT_EQ(back[static_cast<std::size_t>(i)],
                bf16_round(src[static_cast<std::size_t>(i)]))
          << "n=" << n << " i=" << i;
    }
  }
}

// ---- compressed all-reduce -------------------------------------------------

// One compressed all-reduce over `ranks` ranks and `n` elements; returns
// rank 0's result and (optionally) asserts every rank got identical bits.
std::vector<float> run_compressed(int ranks, std::int64_t n,
                                  CommStats* total = nullptr) {
  std::vector<std::vector<float>> results(static_cast<std::size_t>(ranks));
  World world(ranks);
  world.run([&](Communicator& c) {
    std::vector<float> data = rank_data(c.rank(), n);
    c.all_reduce_compressed(std::span<float>(data.data(), data.size()));
    results[static_cast<std::size_t>(c.rank())] = std::move(data);
  });
  if (total != nullptr) *total = world.total_stats();
  for (int r = 1; r < ranks; ++r) {
    EXPECT_EQ(0, std::memcmp(results[0].data(),
                             results[static_cast<std::size_t>(r)].data(),
                             static_cast<std::size_t>(n) * sizeof(float)))
        << "rank " << r << " disagrees with rank 0";
  }
  return results[0];
}

TEST(CompressedAllReduce, AllRanksIdenticalAndCloseToExact) {
  const std::int64_t n = 1031;  // odd: exercises the half-filled last slot
  for (int ranks : {2, 4, 5}) {
    const std::vector<float> got = run_compressed(ranks, n);
    // Exact fp32 reduction for comparison.
    std::vector<float> exact(static_cast<std::size_t>(n), 0.0f);
    for (int r = 0; r < ranks; ++r) {
      const std::vector<float> d = rank_data(r, n);
      for (std::int64_t i = 0; i < n; ++i)
        exact[static_cast<std::size_t>(i)] += d[static_cast<std::size_t>(i)];
    }
    // Each of the <= ranks hops adds one bf16 storage rounding (rel ~2^-9);
    // with |element| <= 1 and up to `ranks` terms, absolute error stays well
    // under ranks * 2^-7.
    const float tol = static_cast<float>(ranks) / 128.0f;
    for (std::int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(got[static_cast<std::size_t>(i)],
                  exact[static_cast<std::size_t>(i)], tol)
          << "ranks=" << ranks << " i=" << i;
    }
  }
}

TEST(CompressedAllReduce, HalvesWireBytes) {
  const std::int64_t n = 1024;
  const int ranks = 4;
  CommStats comp_stats;
  run_compressed(ranks, n, &comp_stats);

  CommStats plain_stats;
  {
    World world(ranks);
    world.run([&](Communicator& c) {
      std::vector<float> data = rank_data(c.rank(), n);
      c.all_reduce(std::span<float>(data.data(), data.size()));
    });
    plain_stats = world.total_stats();
  }

  // Logical accounting: 2 bytes/element instead of 4, per rank.
  const auto& comp = comp_stats.collectives.at("all_reduce_compressed");
  const auto& plain = plain_stats.collectives.at("all_reduce");
  EXPECT_EQ(comp.bytes, ranks * 2 * n);
  EXPECT_EQ(plain.bytes, ranks * 4 * n);
  // Wire accounting: same ring schedule, half the payload bytes.
  EXPECT_EQ(comp_stats.msgs_sent, plain_stats.msgs_sent);
  EXPECT_EQ(comp_stats.bytes_sent * 2, plain_stats.bytes_sent);
}

TEST(CompressedAllReduce, BitIdenticalAcrossBackends) {
  struct Backend {
    const char* label;
    const char* spmd;     // "" = default (fibers)
    const char* workers;  // "" = default
  };
  const Backend kMatrix[] = {
      {"fibers-w1", "", "1"},
      {"fibers-w4", "", "4"},
      {"threads", "threads", ""},
  };
  EnvGuard spmd("TESSERACT_SPMD");
  EnvGuard workers("TESSERACT_WORKERS");
  const std::int64_t n = 517;
  std::vector<float> reference;
  for (const Backend& b : kMatrix) {
    if (b.spmd[0] != '\0') {
      spmd.set(b.spmd);
    } else {
      spmd.clear();
    }
    if (b.workers[0] != '\0') {
      workers.set(b.workers);
    } else {
      workers.clear();
    }
    const std::vector<float> got = run_compressed(4, n);
    if (reference.empty()) {
      reference = got;
    } else {
      EXPECT_EQ(0, std::memcmp(reference.data(), got.data(),
                               static_cast<std::size_t>(n) * sizeof(float)))
          << "backend " << b.label << " diverges";
    }
  }
}

TEST(CompressedAllReduce, SingleRankIsIdentity) {
  World world(1);
  world.run([&](Communicator& c) {
    std::vector<float> data = rank_data(0, 33);
    const std::vector<float> before = data;
    c.all_reduce_compressed(std::span<float>(data.data(), data.size()));
    EXPECT_EQ(0, std::memcmp(before.data(), data.data(),
                             before.size() * sizeof(float)));
  });
}

// ---- gating ----------------------------------------------------------------

TEST(CompressDepthGate, EnvParsing) {
  EnvGuard env("TESSERACT_COMPRESS_DEPTH");
  env.clear();
  EXPECT_FALSE(compress_depth_enabled());
  env.set("0");
  EXPECT_FALSE(compress_depth_enabled());
  env.set("1");
  EXPECT_TRUE(compress_depth_enabled());
  env.set("true");
  EXPECT_TRUE(compress_depth_enabled());
  env.set("");
  EXPECT_FALSE(compress_depth_enabled());
}

TEST(CompressDepthGate, TesseractDepthAllReduceSwitchesCollective) {
  EnvGuard env("TESSERACT_COMPRESS_DEPTH");
  const int q = 2, d = 2;
  const std::int64_t rows = 24, inner = 8, cols = 8;
  // Per-rank partials; the atb depth reduction sums them across layers.
  for (const bool compressed : {false, true}) {
    if (compressed) {
      env.set("1");
    } else {
      env.clear();
    }
    World world(q * q * d);
    world.run([&](Communicator& c) {
      pdg::TesseractComms tc = pdg::TesseractComms::create(c, q, d);
      Tensor a({rows / (q * d), inner / q});
      Tensor b({rows / (q * d), cols / q});
      a.fill(0.25f + 0.5f * static_cast<float>(tc.k));
      b.fill(1.0f);
      (void)pdg::tesseract_atb_local(tc, a, b);
    });
    const CommStats total = world.total_stats();
    const bool has_compressed =
        total.collectives.count("all_reduce_compressed") > 0;
    EXPECT_EQ(has_compressed, compressed);
  }
}

}  // namespace
}  // namespace tsr::comm
