// Unit tests for the obs/ telemetry primitives: metrics registry, scoped
// timers over the simulated clock, live-tensor accounting and the JSON
// document model the exporters are built on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/json.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "runtime/sim_clock.hpp"
#include "tensor/tensor.hpp"

namespace tsr::obs {
namespace {

TEST(Metrics, CountersGaugesAccumulate) {
  Registry reg;
  reg.counter_add("msgs");
  reg.counter_add("msgs", 4);
  reg.gauge_set("loss", 2.5);
  reg.gauge_set("loss", 1.25);
  reg.gauge_max("peak", 3.0);
  reg.gauge_max("peak", 2.0);  // lower value must not win
  Snapshot s = reg.snapshot();
  EXPECT_EQ(s.counters.at("msgs"), 5);
  EXPECT_DOUBLE_EQ(s.gauges.at("loss"), 1.25);
  EXPECT_DOUBLE_EQ(s.gauges.at("peak"), 3.0);
  reg.reset();
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST(Metrics, HistogramBucketsAndStats) {
  Registry reg;
  reg.histogram_observe("t", 1e-9);   // bucket 0 floor
  reg.histogram_observe("t", 3e-9);   // [2ns, 4ns) -> bucket 1
  reg.histogram_observe("t", 1.0);    // ~2^30 ns
  Snapshot s = reg.snapshot();
  const HistogramData& h = s.histograms.at("t");
  EXPECT_EQ(h.count, 3);
  EXPECT_DOUBLE_EQ(h.min, 1e-9);
  EXPECT_DOUBLE_EQ(h.max, 1.0);
  EXPECT_NEAR(h.mean(), (1e-9 + 3e-9 + 1.0) / 3.0, 1e-12);
  EXPECT_EQ(h.buckets[static_cast<std::size_t>(HistogramData::bucket_of(3e-9))],
            1);
  // Degenerate inputs collapse into bucket 0 instead of indexing wild.
  EXPECT_EQ(HistogramData::bucket_of(0.0), 0);
  EXPECT_EQ(HistogramData::bucket_of(-5.0), 0);
  EXPECT_EQ(HistogramData::bucket_of(1e300), HistogramData::kBuckets - 1);
  // bucket_floor is the inverse boundary: value at a floor lands in that
  // bucket.
  for (int i : {0, 1, 7, 30, 63}) {
    EXPECT_EQ(HistogramData::bucket_of(HistogramData::bucket_floor(i)), i);
  }
}

TEST(Metrics, ScopedTimerRecordsSimulatedElapsed) {
  Registry reg;
  rt::SimClock clock;
  {
    ScopedTimer t(&reg, &clock, "op");
    clock.advance(0.25);
  }
  Snapshot s = reg.snapshot();
  ASSERT_EQ(s.histograms.count("op"), 1u);
  EXPECT_DOUBLE_EQ(s.histograms.at("op").sum, 0.25);
  // Null registry or clock: a no-op, usable unconditionally at call sites.
  { ScopedTimer t(nullptr, &clock, "op"); clock.advance(1.0); }
  { ScopedTimer t(&reg, nullptr, "op"); }
  EXPECT_EQ(reg.snapshot().histograms.at("op").count, 1);
}

TEST(Memory, TracksLiveAndPeakTensorBytes) {
  const std::int64_t before = live_tensor_bytes();
  {
    Tensor t({64, 64});
    EXPECT_EQ(live_tensor_bytes() - before,
              64 * 64 * static_cast<std::int64_t>(sizeof(float)));
    EXPECT_GE(peak_tensor_bytes(), live_tensor_bytes());
  }
  EXPECT_EQ(live_tensor_bytes(), before);
}

TEST(Json, DumpCompactAndPretty) {
  JsonValue root = JsonValue::object();
  root["name"] = "bench";
  root["n"] = static_cast<std::int64_t>(3);
  root["ratio"] = 0.5;
  root["ok"] = true;
  root["none"] = JsonValue();
  JsonValue arr = JsonValue::array();
  arr.push_back(1);
  arr.push_back("two");
  root["items"] = std::move(arr);
  EXPECT_EQ(root.dump(),
            "{\"name\":\"bench\",\"n\":3,\"ratio\":0.5,\"ok\":true,"
            "\"none\":null,\"items\":[1,\"two\"]}");
  // Pretty form parses back to the same tree.
  std::string err;
  JsonValue again = json_parse(root.dump(2), &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(again.dump(), root.dump());
}

TEST(Json, EscapesAndNonFinite) {
  JsonValue v = JsonValue::object();
  v["s"] = "a\"b\\c\n\t\x01";
  v["inf"] = std::numeric_limits<double>::infinity();
  v["nan"] = std::nan("");
  const std::string out = v.dump();
  EXPECT_NE(out.find("a\\\"b\\\\c\\n\\t\\u0001"), std::string::npos);
  // JSON has no Inf/NaN; they serialize as null so the document stays valid.
  std::string err;
  JsonValue parsed = json_parse(out, &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_TRUE(parsed.find("inf")->is_null());
  EXPECT_TRUE(parsed.find("nan")->is_null());
}

TEST(Json, ParseAcceptsRfc8259Constructs) {
  std::string err;
  JsonValue v = json_parse(
      " { \"a\" : [ -1 , 2.5e-3 , \"\\u0041\\u00e9\" , { } , [ ] ,"
      " true , false , null ] } ",
      &err);
  ASSERT_TRUE(err.empty()) << err;
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), 8u);
  EXPECT_EQ(a->items()[0].as_int(), -1);
  EXPECT_DOUBLE_EQ(a->items()[1].as_double(), 2.5e-3);
  EXPECT_EQ(a->items()[2].as_string(), "A\xC3\xA9");  // BMP \u escapes
}

TEST(Json, ParseRejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "tru", "1 2",
                          "\"unterminated", "{\"a\" 1}", "[-]"}) {
    std::string err;
    JsonValue v = json_parse(bad, &err);
    EXPECT_TRUE(v.is_null()) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(Json, WriteFileRoundTripAndFailure) {
  JsonValue v = JsonValue::object();
  v["x"] = static_cast<std::int64_t>(7);
  const std::string path = "/tmp/tsr_obs_json_test.json";
  ASSERT_TRUE(write_json_file(path, v));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  std::string err;
  EXPECT_EQ(json_parse(ss.str(), &err).find("x")->as_int(), 7);
  EXPECT_TRUE(err.empty()) << err;
  std::remove(path.c_str());
  EXPECT_FALSE(write_json_file("/nonexistent-dir/x/y.json", v));
}

}  // namespace
}  // namespace tsr::obs
