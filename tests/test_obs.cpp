// Unit tests for the obs/ telemetry primitives: metrics registry, scoped
// timers over the simulated clock, live-tensor accounting and the JSON
// document model the exporters are built on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/json.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "runtime/sim_clock.hpp"
#include "tensor/tensor.hpp"

namespace tsr::obs {
namespace {

TEST(Metrics, CountersGaugesAccumulate) {
  Registry reg;
  reg.counter_add("msgs");
  reg.counter_add("msgs", 4);
  reg.gauge_set("loss", 2.5);
  reg.gauge_set("loss", 1.25);
  reg.gauge_max("peak", 3.0);
  reg.gauge_max("peak", 2.0);  // lower value must not win
  Snapshot s = reg.snapshot();
  EXPECT_EQ(s.counters.at("msgs"), 5);
  EXPECT_DOUBLE_EQ(s.gauges.at("loss"), 1.25);
  EXPECT_DOUBLE_EQ(s.gauges.at("peak"), 3.0);
  reg.reset();
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST(Metrics, HistogramBucketsAndStats) {
  Registry reg;
  reg.histogram_observe("t", 1e-9);   // bucket 0 floor
  reg.histogram_observe("t", 3e-9);   // [2ns, 4ns) -> bucket 1
  reg.histogram_observe("t", 1.0);    // ~2^30 ns
  Snapshot s = reg.snapshot();
  const HistogramData& h = s.histograms.at("t");
  EXPECT_EQ(h.count, 3);
  EXPECT_DOUBLE_EQ(h.min, 1e-9);
  EXPECT_DOUBLE_EQ(h.max, 1.0);
  EXPECT_NEAR(h.mean(), (1e-9 + 3e-9 + 1.0) / 3.0, 1e-12);
  EXPECT_EQ(h.buckets[static_cast<std::size_t>(HistogramData::bucket_of(3e-9))],
            1);
  // Degenerate inputs collapse into bucket 0 instead of indexing wild.
  EXPECT_EQ(HistogramData::bucket_of(0.0), 0);
  EXPECT_EQ(HistogramData::bucket_of(-5.0), 0);
  EXPECT_EQ(HistogramData::bucket_of(1e300), HistogramData::kBuckets - 1);
  // bucket_floor is the inverse boundary: value at a floor lands in that
  // bucket.
  for (int i : {0, 1, 7, 30, 63}) {
    EXPECT_EQ(HistogramData::bucket_of(HistogramData::bucket_floor(i)), i);
  }
}

TEST(Metrics, QuantileEdgeCases) {
  // Empty histogram: quantiles are 0, not garbage.
  HistogramData empty{};
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.p99(), 0.0);

  // Single sample: every quantile is that sample exactly (the estimate is
  // clamped to [min, max], so bucket interpolation cannot smear it).
  Registry reg;
  reg.histogram_observe("one", 3.5e-6);
  const HistogramData one = reg.snapshot().histograms.at("one");
  EXPECT_DOUBLE_EQ(one.quantile(0.01), 3.5e-6);
  EXPECT_DOUBLE_EQ(one.p50(), 3.5e-6);
  EXPECT_DOUBLE_EQ(one.p99(), 3.5e-6);

  // Degenerate q: q <= 0 pins to min, q >= 1 pins to max; NaN acts like 0.
  reg.histogram_observe("two", 1e-3);
  reg.histogram_observe("two", 1.0);
  const HistogramData two = reg.snapshot().histograms.at("two");
  EXPECT_DOUBLE_EQ(two.quantile(0.0), 1e-3);
  EXPECT_DOUBLE_EQ(two.quantile(-1.0), 1e-3);
  EXPECT_DOUBLE_EQ(two.quantile(1.0), 1.0);
  EXPECT_DOUBLE_EQ(two.quantile(2.0), 1.0);
  EXPECT_DOUBLE_EQ(two.quantile(std::nan("")), 1e-3);
}

TEST(Metrics, QuantileBucketBoundariesAndMonotonicity) {
  // Values exactly on bucket floors: the estimate must stay within the
  // observed [min, max] and be monotone in q.
  Registry reg;
  for (int i = 0; i < 100; ++i) {
    reg.histogram_observe("h", HistogramData::bucket_floor(i % 8 + 4));
  }
  const HistogramData h = reg.snapshot().histograms.at("h");
  double prev = h.min;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << q;
    EXPECT_GE(v, h.min) << q;
    EXPECT_LE(v, h.max) << q;
    prev = v;
  }
  EXPECT_LE(h.p50(), h.p95());
  EXPECT_LE(h.p95(), h.p99());
  EXPECT_LE(h.p99(), h.max);

  // A heavily skewed distribution: 99 fast samples, 1 slow one. p50 must
  // stay near the fast mass, p99 must reach toward the outlier's bucket.
  Registry reg2;
  for (int i = 0; i < 99; ++i) reg2.histogram_observe("s", 1e-6);
  reg2.histogram_observe("s", 1.0);
  const HistogramData s = reg2.snapshot().histograms.at("s");
  EXPECT_LT(s.p50(), 1e-5);
  EXPECT_GT(s.quantile(0.999), 0.1);
}

// Nearest-rank oracle over the raw samples: 1-based rank ceil(q*n), with
// the same epsilon guard quantile() uses so exact boundary products like
// 0.3 * 10 (which rounds to just above 3 in binary) pick rank 3, not 4.
double oracle_quantile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const auto n = static_cast<std::int64_t>(v.size());
  std::int64_t rank =
      static_cast<std::int64_t>(std::ceil(q * static_cast<double>(n) - 1e-9));
  rank = std::max<std::int64_t>(1, std::min(n, rank));
  return v[static_cast<std::size_t>(rank - 1)];
}

TEST(Metrics, QuantileMatchesSortedSampleOracle) {
  // count == 1: every q is the sample, bit-exactly.
  {
    Registry reg;
    reg.histogram_observe("h", 7.25e-7);
    const HistogramData h = reg.snapshot().histograms.at("h");
    for (double q : {0.001, 0.3, 0.5, 0.9, 0.99, 1.0}) {
      EXPECT_DOUBLE_EQ(h.quantile(q), 7.25e-7) << q;
    }
  }
  // Extreme-rank pin at the low end: q = 1/3 of three samples targets rank 1
  // exactly, which must return min (not an interpolated bucket estimate).
  {
    Registry reg;
    const std::vector<double> v = {130e-9, 135e-9, 300e-9};
    for (double x : v) reg.histogram_observe("h", x);
    const HistogramData h = reg.snapshot().histograms.at("h");
    EXPECT_DOUBLE_EQ(h.quantile(1.0 / 3.0), oracle_quantile(v, 1.0 / 3.0));
    EXPECT_DOUBLE_EQ(h.quantile(1.0 / 3.0), 130e-9);
  }
  // Extreme-rank pin at the high end, with both samples sharing one
  // power-of-two bucket ([256ns, 512ns)): q = 0.9 of two samples targets
  // rank 2 == count, which must return max exactly — in-bucket
  // interpolation would land at 448ns, a value never observed.
  {
    Registry reg;
    const std::vector<double> v = {257e-9, 500e-9};
    for (double x : v) reg.histogram_observe("h", x);
    const HistogramData h = reg.snapshot().histograms.at("h");
    EXPECT_DOUBLE_EQ(h.quantile(0.9), oracle_quantile(v, 0.9));
    EXPECT_DOUBLE_EQ(h.quantile(0.9), 500e-9);
  }
  // All samples equal: one bucket, min == max, every q collapses to it.
  {
    Registry reg;
    for (int i = 0; i < 5; ++i) reg.histogram_observe("h", 3e-7);
    const HistogramData h = reg.snapshot().histograms.at("h");
    for (double q : {0.1, 0.5, 0.8, 0.999}) {
      EXPECT_DOUBLE_EQ(h.quantile(q), 3e-7) << q;
    }
  }
  // Exact nearest-rank boundary: q * count == 3.0 in exact arithmetic but
  // just above it in binary (0.3 is not representable). The target must be
  // the 3rd smallest sample, not the 4th — with one sample per bucket this
  // is visible as a whole-bucket shift.
  {
    Registry reg;
    std::vector<double> v;
    for (int i = 0; i < 10; ++i) {
      v.push_back(HistogramData::bucket_floor(10 + i));
      reg.histogram_observe("h", v.back());
    }
    const HistogramData h = reg.snapshot().histograms.at("h");
    for (double q : {0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9, 1.0}) {
      EXPECT_EQ(HistogramData::bucket_of(h.quantile(q)),
                HistogramData::bucket_of(oracle_quantile(v, q)))
          << q;
    }
  }
}

TEST(Metrics, ScopedTimerRecordsSimulatedElapsed) {
  Registry reg;
  rt::SimClock clock;
  {
    ScopedTimer t(&reg, &clock, "op");
    clock.advance(0.25);
  }
  Snapshot s = reg.snapshot();
  ASSERT_EQ(s.histograms.count("op"), 1u);
  EXPECT_DOUBLE_EQ(s.histograms.at("op").sum, 0.25);
  // Null registry or clock: a no-op, usable unconditionally at call sites.
  { ScopedTimer t(nullptr, &clock, "op"); clock.advance(1.0); }
  { ScopedTimer t(&reg, nullptr, "op"); }
  EXPECT_EQ(reg.snapshot().histograms.at("op").count, 1);
}

TEST(Memory, TracksLiveAndPeakTensorBytes) {
  const std::int64_t before = live_tensor_bytes();
  {
    Tensor t({64, 64});
    EXPECT_EQ(live_tensor_bytes() - before,
              64 * 64 * static_cast<std::int64_t>(sizeof(float)));
    EXPECT_GE(peak_tensor_bytes(), live_tensor_bytes());
  }
  EXPECT_EQ(live_tensor_bytes(), before);
}

TEST(Json, DumpCompactAndPretty) {
  JsonValue root = JsonValue::object();
  root["name"] = "bench";
  root["n"] = static_cast<std::int64_t>(3);
  root["ratio"] = 0.5;
  root["ok"] = true;
  root["none"] = JsonValue();
  JsonValue arr = JsonValue::array();
  arr.push_back(1);
  arr.push_back("two");
  root["items"] = std::move(arr);
  EXPECT_EQ(root.dump(),
            "{\"name\":\"bench\",\"n\":3,\"ratio\":0.5,\"ok\":true,"
            "\"none\":null,\"items\":[1,\"two\"]}");
  // Pretty form parses back to the same tree.
  std::string err;
  JsonValue again = json_parse(root.dump(2), &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(again.dump(), root.dump());
}

TEST(Json, EscapesAndNonFinite) {
  JsonValue v = JsonValue::object();
  v["s"] = "a\"b\\c\n\t\x01";
  v["inf"] = std::numeric_limits<double>::infinity();
  v["nan"] = std::nan("");
  const std::string out = v.dump();
  EXPECT_NE(out.find("a\\\"b\\\\c\\n\\t\\u0001"), std::string::npos);
  // JSON has no Inf/NaN; they serialize as null so the document stays valid.
  std::string err;
  JsonValue parsed = json_parse(out, &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_TRUE(parsed.find("inf")->is_null());
  EXPECT_TRUE(parsed.find("nan")->is_null());
}

TEST(Json, ParseAcceptsRfc8259Constructs) {
  std::string err;
  JsonValue v = json_parse(
      " { \"a\" : [ -1 , 2.5e-3 , \"\\u0041\\u00e9\" , { } , [ ] ,"
      " true , false , null ] } ",
      &err);
  ASSERT_TRUE(err.empty()) << err;
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), 8u);
  EXPECT_EQ(a->items()[0].as_int(), -1);
  EXPECT_DOUBLE_EQ(a->items()[1].as_double(), 2.5e-3);
  EXPECT_EQ(a->items()[2].as_string(), "A\xC3\xA9");  // BMP \u escapes
}

TEST(Json, ParseRejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "tru", "1 2",
                          "\"unterminated", "{\"a\" 1}", "[-]"}) {
    std::string err;
    JsonValue v = json_parse(bad, &err);
    EXPECT_TRUE(v.is_null()) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(Json, ParseStringEscapesRoundTrip) {
  // Every escape the dumper can emit parses back to the original bytes.
  const std::string original = "quote\" back\\ slash/ \b\f\n\r\t \x01\x1f end";
  JsonValue v = JsonValue::object();
  v["s"] = original;
  std::string err;
  JsonValue round = json_parse(v.dump(), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(round.find("s")->as_string(), original);
  // Explicit escape forms, including solidus and \u control escapes.
  JsonValue esc = json_parse(
      "\"\\\" \\\\ \\/ \\b \\f \\n \\r \\t \\u0007\"", &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(esc.as_string(), "\" \\ / \b \f \n \r \t \a");
}

TEST(Json, ParseUnicodeEscapesAndPassthrough) {
  std::string err;
  // \u escapes across UTF-8 widths: 1-byte A, 2-byte é, 3-byte €.
  JsonValue v = json_parse("\"\\u0041 \\u00e9 \\u20ac\"", &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(v.as_string(), "A \xC3\xA9 \xE2\x82\xAC");
  // Raw (already-encoded) UTF-8 passes through untouched.
  const std::string raw = "\"caf\xC3\xA9 \xE2\x82\xAC 5\"";
  JsonValue raw_v = json_parse(raw, &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(raw_v.as_string(), "caf\xC3\xA9 \xE2\x82\xAC 5");
}

TEST(Json, ParseDeepNesting) {
  // Deep but reasonable nesting must parse without blowing the stack, and
  // the tree must round-trip through dump().
  constexpr int kDepth = 256;
  std::string text;
  for (int i = 0; i < kDepth; ++i) text += "[";
  text += "42";
  for (int i = 0; i < kDepth; ++i) text += "]";
  std::string err;
  JsonValue v = json_parse(text, &err);
  ASSERT_TRUE(err.empty()) << err;
  const JsonValue* cur = &v;
  for (int i = 0; i < kDepth; ++i) {
    ASSERT_TRUE(cur->is_array()) << i;
    ASSERT_EQ(cur->size(), 1u) << i;
    cur = &cur->items()[0];
  }
  EXPECT_EQ(cur->as_int(), 42);
  EXPECT_EQ(json_parse(v.dump(), &err).dump(), text);
  EXPECT_TRUE(err.empty()) << err;
}

TEST(Json, ParseRejectsTrailingGarbage) {
  for (const char* bad : {"{} x", "1 2", "null,", "[1] [2]", "true}"}) {
    std::string err;
    JsonValue v = json_parse(bad, &err);
    EXPECT_TRUE(v.is_null()) << bad;
    EXPECT_NE(err.find("trailing"), std::string::npos) << bad << ": " << err;
  }
  // Trailing whitespace is not garbage.
  std::string err;
  EXPECT_EQ(json_parse("  7  \n\t", &err).as_int(), 7);
  EXPECT_TRUE(err.empty()) << err;
}

TEST(Json, ParseRejectsMalformedStringsAndEscapes) {
  for (const char* bad :
       {"\"unterminated",       // EOF inside string
        "\"dangling\\",         // escape at EOF
        "\"bad \\x escape\"",   // unknown escape letter
        "\"\\u12\"",            // truncated \u
        "\"\\uZZZZ\"",          // non-hex \u
        "\"raw \n newline\"",   // unescaped control character
        "[1,", "{\"a\":", "{\"a\"}", "{:1}", "-", "+1", "tru", "nul",
        "'single'"}) {
    std::string err;
    JsonValue v = json_parse(bad, &err);
    EXPECT_TRUE(v.is_null()) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
  // Error messages carry a byte offset so exporter bugs are locatable.
  std::string err;
  (void)json_parse("{\"a\": tru}", &err);
  EXPECT_NE(err.find("offset"), std::string::npos) << err;
}

TEST(Json, WriteFileRoundTripAndFailure) {
  JsonValue v = JsonValue::object();
  v["x"] = static_cast<std::int64_t>(7);
  const std::string path = "/tmp/tsr_obs_json_test.json";
  ASSERT_TRUE(write_json_file(path, v));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  std::string err;
  EXPECT_EQ(json_parse(ss.str(), &err).find("x")->as_int(), 7);
  EXPECT_TRUE(err.empty()) << err;
  std::remove(path.c_str());
  EXPECT_FALSE(write_json_file("/nonexistent-dir/x/y.json", v));
}

}  // namespace
}  // namespace tsr::obs
