// End-to-end multi-layer models: Tesseract / Megatron Transformer stacks
// against the serial encoder, and full training-step equivalence (forward +
// backward + optimizer) — the mechanism behind the Fig. 7 exactness claim.
#include <gtest/gtest.h>

#include "comm/communicator.hpp"
#include "nn/optimizer.hpp"
#include "nn/transformer.hpp"
#include "parallel/dist.hpp"
#include "parallel/megatron.hpp"
#include "parallel/tesseract_transformer.hpp"
#include "tensor/init.hpp"
#include "tensor/kernels.hpp"

namespace tsr::par {
namespace {

constexpr float kTol = 5e-3f;

TEST(TesseractModel, ThreeLayerStackMatchesSerial) {
  const std::int64_t b = 8, s = 3, h = 16, heads = 4, layers = 3;
  Rng data_rng(100);
  Tensor x = random_normal({b, s, h}, data_rng);
  Tensor dy = random_normal({b, s, h}, data_rng);

  Rng serial_rng(1000);
  nn::TransformerEncoder serial({h, heads, layers, 4}, serial_rng);
  Tensor y_ref = serial.forward(x);
  Tensor dx_ref = serial.backward(dy);

  comm::World world(8);
  world.run([&](comm::Communicator& c) {
    TesseractContext ctx(c, 2, 2);
    Rng wrng(1000);
    TesseractTransformer model(ctx, h, heads, layers, wrng);
    Tensor yl = model.forward(distribute_activation(ctx.comms(), x));
    Tensor y = collect_activation(ctx.comms(), yl, b, s, h);
    EXPECT_LT(max_abs_diff(y, y_ref), kTol);
    Tensor dxl = model.backward(distribute_activation(ctx.comms(), dy));
    Tensor dx = collect_activation(ctx.comms(), dxl, b, s, h);
    EXPECT_LT(max_abs_diff(dx, dx_ref), kTol);
    EXPECT_EQ(model.layers().size(), 3u);
  });
}

TEST(MegatronModel, TwoLayerStackMatchesSerial) {
  const std::int64_t b = 4, s = 3, h = 16, heads = 4, layers = 2;
  Rng data_rng(101);
  Tensor x = random_normal({b, s, h}, data_rng);
  Tensor dy = random_normal({b, s, h}, data_rng);

  Rng serial_rng(1001);
  nn::TransformerEncoder serial({h, heads, layers, 4}, serial_rng);
  Tensor y_ref = serial.forward(x);
  Tensor dx_ref = serial.backward(dy);

  comm::World world(4);
  world.run([&](comm::Communicator& c) {
    MegatronContext ctx(c);
    Rng wrng(1001);
    MegatronTransformer model(ctx, h, heads, layers, wrng);
    Tensor y = model.forward(x);
    EXPECT_LT(max_abs_diff(y, y_ref), kTol);
    Tensor dx = model.backward(dy);
    EXPECT_LT(max_abs_diff(dx, dx_ref), kTol);
  });
}

// Three full SGD steps: distributed outputs keep tracking the serial model.
// This is stronger than a single-pass check — it exercises the parameter
// update protocol (sharded weights, row-0 biases, replicated LN params).
TEST(TrainingStep, TesseractTracksSerialOverSgdSteps) {
  const std::int64_t b = 8, s = 2, h = 16, heads = 4;
  Rng data_rng(102);
  std::vector<Tensor> xs;
  std::vector<Tensor> dys;
  for (int step = 0; step < 3; ++step) {
    xs.push_back(random_normal({b, s, h}, data_rng));
    dys.push_back(random_normal({b, s, h}, data_rng));
  }

  // Serial trajectory.
  Rng serial_rng(1002);
  nn::TransformerLayer serial(h, heads, serial_rng);
  nn::SGD serial_opt(0.05f);
  std::vector<Tensor> serial_outputs;
  for (int step = 0; step < 3; ++step) {
    serial_outputs.push_back(serial.forward(xs[static_cast<std::size_t>(step)]));
    serial.zero_grad();
    (void)serial.backward(dys[static_cast<std::size_t>(step)]);
    std::vector<nn::Param*> params = serial.params();
    serial_opt.step(params);
  }

  comm::World world(8);
  world.run([&](comm::Communicator& c) {
    TesseractContext ctx(c, 2, 2);
    Rng wrng(1002);
    TesseractTransformerLayer layer(ctx, h, heads, wrng);
    nn::SGD opt(0.05f);
    for (int step = 0; step < 3; ++step) {
      Tensor yl =
          layer.forward(distribute_activation(ctx.comms(), xs[static_cast<std::size_t>(step)]));
      Tensor y = collect_activation(ctx.comms(), yl, b, s, h);
      EXPECT_LT(max_abs_diff(y, serial_outputs[static_cast<std::size_t>(step)]),
                kTol)
          << "diverged at step " << step;
      layer.zero_grad();
      (void)layer.backward(
          distribute_activation(ctx.comms(), dys[static_cast<std::size_t>(step)]));
      std::vector<nn::Param*> params = layer.params();
      opt.step(params);
    }
  });
}

TEST(TrainingStep, MegatronTracksSerialOverSgdSteps) {
  const std::int64_t b = 4, s = 2, h = 16, heads = 4;
  Rng data_rng(103);
  std::vector<Tensor> xs;
  std::vector<Tensor> dys;
  for (int step = 0; step < 3; ++step) {
    xs.push_back(random_normal({b, s, h}, data_rng));
    dys.push_back(random_normal({b, s, h}, data_rng));
  }

  Rng serial_rng(1003);
  nn::TransformerLayer serial(h, heads, serial_rng);
  nn::SGD serial_opt(0.05f);
  std::vector<Tensor> serial_outputs;
  for (int step = 0; step < 3; ++step) {
    serial_outputs.push_back(serial.forward(xs[static_cast<std::size_t>(step)]));
    serial.zero_grad();
    (void)serial.backward(dys[static_cast<std::size_t>(step)]);
    std::vector<nn::Param*> params = serial.params();
    serial_opt.step(params);
  }

  comm::World world(4);
  world.run([&](comm::Communicator& c) {
    MegatronContext ctx(c);
    Rng wrng(1003);
    MegatronTransformerLayer layer(ctx, h, heads, wrng);
    nn::SGD opt(0.05f);
    for (int step = 0; step < 3; ++step) {
      Tensor y = layer.forward(xs[static_cast<std::size_t>(step)]);
      EXPECT_LT(max_abs_diff(y, serial_outputs[static_cast<std::size_t>(step)]),
                kTol);
      layer.zero_grad();
      (void)layer.backward(dys[static_cast<std::size_t>(step)]);
      std::vector<nn::Param*> params = layer.params();
      opt.step(params);
    }
  });
}

// The paper's Section 3.4 compatibility claim in miniature: two independent
// Tesseract groups (data parallelism) average their gradients with an
// all-reduce across groups and stay in sync.
TEST(Compatibility, DataParallelOverTesseractGroups) {
  const std::int64_t b = 4, s = 2, h = 8, heads = 2;
  const int q = 2, d = 1;
  const int group_size = q * q * d;
  Rng data_rng(104);
  Tensor x0 = random_normal({b, s, h}, data_rng);  // group 0's micro-batch
  Tensor x1 = random_normal({b, s, h}, data_rng);  // group 1's micro-batch
  Tensor dy = random_normal({b, s, h}, data_rng);

  // Reference: serial model on the combined batch gradient (average).
  Rng serial_rng(1004);
  nn::TransformerLayer serial(h, heads, serial_rng);
  (void)serial.forward(x0);
  (void)serial.backward(dy);
  Tensor g0 = serial.ffn.fc1.w.grad.clone();
  serial.zero_grad();
  (void)serial.forward(x1);
  (void)serial.backward(dy);
  Tensor g1 = serial.ffn.fc1.w.grad.clone();
  Tensor g_avg = scaled(add(g0, g1), 0.5f);

  comm::World world(2 * group_size);
  world.run([&](comm::Communicator& c) {
    const int dp_group = c.rank() / group_size;  // 0 or 1
    comm::Communicator tp = c.split(dp_group, c.rank());
    // Ranks holding the same shard across the two groups form a DP pair.
    comm::Communicator dp = c.split(c.rank() % group_size, dp_group);
    ASSERT_EQ(tp.size(), group_size);
    ASSERT_EQ(dp.size(), 2);

    TesseractContext ctx(tp, q, d);
    Rng wrng(1004);
    TesseractTransformerLayer layer(ctx, h, heads, wrng);
    const Tensor& my_x = dp_group == 0 ? x0 : x1;
    (void)layer.forward(distribute_activation(ctx.comms(), my_x));
    layer.zero_grad();
    (void)layer.backward(distribute_activation(ctx.comms(), dy));

    // Data-parallel gradient averaging.
    dp.all_reduce(layer.ffn.fc1.w.grad);
    scale(layer.ffn.fc1.w.grad, 0.5f);

    Tensor ref_block = pdg::distribute_b_layout(ctx.comms(), g_avg);
    EXPECT_LT(max_abs_diff(layer.ffn.fc1.w.grad, ref_block), kTol);
  });
}

}  // namespace
}  // namespace tsr::par
