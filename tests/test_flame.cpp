// Flamegraph folding (perf/flame.*): pinned folded output for a
// hand-constructed two-rank trace, self-time nesting rules, and the
// sums-to-busy-time contract on the real reference workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "parallel/dist.hpp"
#include "parallel/tesseract_transformer.hpp"
#include "perf/flame.hpp"
#include "tensor/init.hpp"
#include "topology/machine_spec.hpp"

namespace {

using tsr::comm::SpanKind;
using tsr::comm::World;
using tsr::perf::fold_traces;
using tsr::perf::folded_to_string;
using tsr::perf::FoldedLine;

TEST(Flame, PinnedTwoRankFoldedOutput) {
  // Power-of-two span times so every self-time is exact. Rank 0 nests gemm
  // and all_reduce inside step; rank 1 has one flat span.
  World world(2, tsr::topo::MachineSpec::zero_cost());
  world.enable_tracing();
  world.record_span(0, "step", 0.0, 1.0, SpanKind::Marker);
  world.record_span(0, "gemm", 0.0, 0.25, SpanKind::Kernel);
  world.record_span(0, "all_reduce", 0.25, 0.75, SpanKind::Collective);
  world.record_span(1, "gemm", 0.0, 0.5, SpanKind::Kernel);

  // step self = 1.0 - (0.25 + 0.5) = 0.25; children keep their full time.
  // Lines are sorted by rank then stack, so the order below is pinned.
  EXPECT_EQ(folded_to_string(fold_traces(world)),
            "rank0;step 0.25\n"
            "rank0;step;all_reduce 0.5\n"
            "rank0;step;gemm 0.25\n"
            "rank1;gemm 0.5\n");
}

TEST(Flame, SiblingSpansAggregateAndZeroSelfIsDropped) {
  World world(1, tsr::topo::MachineSpec::zero_cost());
  world.enable_tracing();
  // Two steps, each fully covered by a gemm: the steps have zero self time
  // so no "rank0;step" line appears, and the two gemm selves aggregate.
  world.record_span(0, "step", 0.0, 1.0, SpanKind::Marker);
  world.record_span(0, "gemm", 0.0, 1.0, SpanKind::Kernel);
  world.record_span(0, "step", 1.0, 3.0, SpanKind::Marker);
  world.record_span(0, "gemm", 1.0, 3.0, SpanKind::Kernel);

  EXPECT_EQ(folded_to_string(fold_traces(world)), "rank0;step;gemm 3\n");
}

// Merged-interval busy time of one rank's spans: the folded self times must
// sum to exactly this (top-level spans never overlap in a sane trace).
double busy_time(const World& world, int rank) {
  std::vector<std::pair<double, double>> iv;
  for (const auto& e : world.trace(rank)) iv.emplace_back(e.t0, e.t1);
  std::sort(iv.begin(), iv.end());
  double busy = 0.0, start = 0.0, end = -1.0;
  bool open = false;
  for (const auto& [t0, t1] : iv) {
    if (!open || t0 > end) {
      if (open) busy += end - start;
      start = t0;
      end = t1;
      open = true;
    } else {
      end = std::max(end, t1);
    }
  }
  if (open) busy += end - start;
  return busy;
}

TEST(Flame, ReferenceWorkloadCountsSumToPerRankBusyTime) {
  // The same [2,2,2] Transformer-layer workload tsr_report gen runs: real
  // collective/kernel/marker nesting on 8 ranks.
  constexpr std::int64_t kBatch = 4, kSeq = 8, kHidden = 64, kHeads = 4;
  tsr::Rng data_rng(7);
  tsr::Tensor x = tsr::random_normal({kBatch, kSeq, kHidden}, data_rng);
  tsr::Tensor dy = tsr::random_normal({kBatch, kSeq, kHidden}, data_rng);
  World world(8, tsr::topo::MachineSpec::meluxina());
  world.enable_tracing();
  world.run([&](tsr::comm::Communicator& c) {
    tsr::par::TesseractContext ctx(c, 2, 2);
    tsr::Rng wrng(8);
    tsr::par::TesseractTransformerLayer layer(ctx, kHidden, kHeads, wrng);
    tsr::Tensor xl = tsr::par::distribute_activation(ctx.comms(), x);
    tsr::Tensor dyl = tsr::par::distribute_activation(ctx.comms(), dy);
    (void)layer.forward(xl);
    (void)layer.backward(dyl);
  });

  const std::vector<FoldedLine> lines = fold_traces(world);
  ASSERT_FALSE(lines.empty());
  std::map<int, double> per_rank;
  for (const FoldedLine& line : lines) {
    EXPECT_GT(line.seconds, 0.0) << line.stack;
    // Every stack is rooted at its rank frame.
    EXPECT_EQ(line.stack.rfind("rank" + std::to_string(line.rank) + ";", 0),
              0u)
        << line.stack;
    per_rank[line.rank] += line.seconds;
  }
  for (int r = 0; r < world.size(); ++r) {
    ASSERT_TRUE(per_rank.count(r)) << "rank " << r << " folded no stacks";
    EXPECT_NEAR(per_rank[r], busy_time(world, r), 1e-9) << "rank " << r;
  }

  // Rendered format: every line is `stack;frames count` with a parseable
  // count and no stray whitespace.
  const std::string rendered = folded_to_string(lines);
  std::istringstream is(rendered);
  std::string text_line;
  std::size_t n = 0;
  while (std::getline(is, text_line)) {
    const std::size_t space = text_line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << text_line;
    const std::string stack = text_line.substr(0, space);
    EXPECT_NE(stack.find(';'), std::string::npos) << text_line;
    char* end = nullptr;
    const double count = std::strtod(text_line.c_str() + space + 1, &end);
    EXPECT_GT(count, 0.0) << text_line;
    EXPECT_EQ(*end, '\0') << text_line;
    ++n;
  }
  EXPECT_EQ(n, lines.size());
}

}  // namespace
