// Message buffer pool and ring-collective edge cases: zero-allocation steady
// state, empty and single-rank collectives, input preservation, and bitwise
// reproducibility of a Tesseract [2,2,2] layer when every payload buffer is
// a recycled one.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "comm/communicator.hpp"
#include "parallel/dist.hpp"
#include "parallel/tesseract_transformer.hpp"
#include "tensor/init.hpp"
#include "topology/machine_spec.hpp"

namespace tsr::comm {
namespace {

std::uint64_t total_allocations(World& w) {
  std::uint64_t n = 0;
  for (int r = 0; r < w.size(); ++r) n += w.pool(r).allocations();
  return n;
}

std::uint64_t total_reuses(World& w) {
  std::uint64_t n = 0;
  for (int r = 0; r < w.size(); ++r) n += w.pool(r).reuses();
  return n;
}

TEST(BufferPool, RingCollectivesReachZeroAllocSteadyState) {
  World world(4);
  auto round = [&] {
    world.run([&](Communicator& c) {
      std::vector<float> v(32, static_cast<float>(c.rank()));
      c.all_reduce(v);
      std::vector<float> out(v.size() * 4);
      c.all_gather(v, out);
      std::vector<float> chunk(v.size() / 4);
      c.reduce_scatter(v, chunk);
    });
  };
  round();
  const std::uint64_t after_first = total_allocations(world);
  round();
  round();
  // Warm pools serve every later round: reuse happens, allocation stops.
  EXPECT_EQ(total_allocations(world), after_first);
  EXPECT_GT(total_reuses(world), 0u);
}

TEST(BufferPool, EmptyCollectivesComplete) {
  World world(3);
  world.run([&](Communicator& c) {
    std::vector<float> empty;
    c.all_reduce(empty);
    c.broadcast(empty, 0);
    c.reduce_scatter(empty, empty);
    std::vector<float> out;
    c.all_gather(empty, out);
    c.barrier();
  });
  for (int r = 0; r < 3; ++r) EXPECT_EQ(world.mailbox(r).pending(), 0u);
}

TEST(BufferPool, SingleRankShortCircuitsWithoutMessages) {
  World world(1);
  world.run([&](Communicator& c) {
    std::vector<float> v{1.f, 2.f, 3.f};
    c.all_reduce(v);
    c.broadcast(v, 0);
    c.reduce(v, 0);
    std::vector<float> out(v.size());
    c.reduce_scatter(v, out);
    EXPECT_EQ(out, v);
    std::vector<float> gathered(v.size());
    c.all_gather(v, gathered);
    EXPECT_EQ(gathered, v);
    c.barrier();
  });
  EXPECT_EQ(world.mailbox(0).pending(), 0u);
  EXPECT_EQ(world.clock(0).now(), 0.0);
  EXPECT_EQ(world.total_stats().msgs_sent, 0);
}

TEST(BufferPool, ReduceScatterPreservesInput) {
  World world(4);
  world.run([&](Communicator& c) {
    std::vector<float> data(20);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<float>(c.rank() * 100) + static_cast<float>(i);
    }
    const std::vector<float> before = data;
    std::vector<float> out(5);
    c.reduce_scatter(data, out);
    EXPECT_EQ(data, before);
    for (std::size_t i = 0; i < out.size(); ++i) {
      // Sum over ranks of element (rank_chunk_offset + i).
      const float base = 0.f + 100.f + 200.f + 300.f;
      const float idx = 4.f * (static_cast<float>(c.rank()) * 5.f +
                               static_cast<float>(i));
      EXPECT_EQ(out[i], base + idx);
    }
  });
}

TEST(BufferPool, RaggedReduceScatterSumsEveryChunk) {
  World world(3);
  world.run([&](Communicator& c) {
    // 8 = 3*2 + 2: rank 0 and 1 own 3 elements, rank 2 owns 2.
    std::vector<float> data(8, 1.f);
    std::vector<float> out(static_cast<std::size_t>(c.rank() < 2 ? 3 : 2));
    c.reduce_scatter(data, out);
    for (float v : out) EXPECT_EQ(v, 3.f);
  });
}

// Two identical forward passes through a Tesseract [2,2,2] transformer layer
// in one world: the second pass runs entirely on recycled message buffers
// and must produce byte-identical activations.
TEST(BufferPool, TesseractGridRecycledBuffersAreByteIdentical) {
  const std::int64_t b = 4, s = 8, h = 64, heads = 8;
  Rng data_rng(7);
  Tensor x = random_normal({b, s, h}, data_rng);
  Tensor y1, y2;
  World world(8, topo::MachineSpec::meluxina());
  world.run([&](Communicator& c) {
    par::TesseractContext ctx(c, 2, 2);
    Rng wrng(99);
    par::TesseractTransformerLayer layer(ctx, h, heads, wrng);
    Tensor yl1 = layer.forward(par::distribute_activation(ctx.comms(), x));
    Tensor full1 = par::collect_activation(ctx.comms(), yl1, b, s, h);
    Tensor yl2 = layer.forward(par::distribute_activation(ctx.comms(), x));
    Tensor full2 = par::collect_activation(ctx.comms(), yl2, b, s, h);
    if (c.rank() == 0) {
      y1 = std::move(full1);
      y2 = std::move(full2);
    }
  });
  ASSERT_EQ(y1.numel(), b * s * h);
  ASSERT_EQ(y1.numel(), y2.numel());
  EXPECT_EQ(std::memcmp(y1.data(), y2.data(),
                        static_cast<std::size_t>(y1.numel()) * sizeof(float)),
            0);
  EXPECT_GT(total_reuses(world), 0u);
}

}  // namespace
}  // namespace tsr::comm
