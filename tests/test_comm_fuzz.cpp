// Randomized consistency fuzzing of the collective implementations: for
// seeded random (group size, payload size, op sequence) draws, every
// collective's result is checked against a locally-computed reference. This
// catches interaction bugs (tag reuse, chunk arithmetic on ragged sizes,
// concurrent groups) that fixed-size unit tests can miss.
#include <gtest/gtest.h>

#include <numeric>

#include "comm/communicator.hpp"
#include "tensor/rng.hpp"

namespace tsr::comm {
namespace {

// Deterministic per-rank contribution so references are computable locally.
float contribution(int rank, std::int64_t i) {
  return static_cast<float>((rank + 1) * 100 + static_cast<int>(i % 97));
}

class CollectiveFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveFuzz, RandomSequences) {
  Rng rng(static_cast<std::uint64_t>(GetParam()), /*stream=*/0xF022);
  const int g = 1 + static_cast<int>(rng.next_below(8));
  const int ops = 12;

  // Pre-draw the op schedule so every rank agrees on it.
  struct Op {
    int kind;           // 0 bcast, 1 reduce, 2 allreduce, 3 allgather,
                        // 4 reduce_scatter, 5 barrier, 6 alltoall
    int root;
    std::int64_t count;
  };
  std::vector<Op> schedule;
  for (int i = 0; i < ops; ++i) {
    Op op;
    op.kind = static_cast<int>(rng.next_below(7));
    op.root = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(g)));
    op.count = 1 + static_cast<std::int64_t>(rng.next_below(50));
    schedule.push_back(op);
  }

  World world(g);
  world.run([&](Communicator& c) {
    for (std::size_t step = 0; step < schedule.size(); ++step) {
      const Op& op = schedule[step];
      const std::int64_t n = op.count;
      switch (op.kind) {
        case 0: {  // broadcast: everyone ends with the root's contribution
          std::vector<float> data(static_cast<std::size_t>(n));
          for (std::int64_t i = 0; i < n; ++i) {
            data[static_cast<std::size_t>(i)] = contribution(c.rank(), i);
          }
          c.broadcast(data, op.root);
          for (std::int64_t i = 0; i < n; ++i) {
            ASSERT_EQ(data[static_cast<std::size_t>(i)],
                      contribution(op.root, i))
                << "step " << step << " g=" << g << " n=" << n;
          }
          break;
        }
        case 1: {  // reduce to root
          std::vector<float> data(static_cast<std::size_t>(n));
          for (std::int64_t i = 0; i < n; ++i) {
            data[static_cast<std::size_t>(i)] = contribution(c.rank(), i);
          }
          c.reduce(data, op.root);
          if (c.rank() == op.root) {
            for (std::int64_t i = 0; i < n; ++i) {
              float want = 0.0f;
              for (int r = 0; r < g; ++r) want += contribution(r, i);
              ASSERT_EQ(data[static_cast<std::size_t>(i)], want)
                  << "step " << step;
            }
          }
          break;
        }
        case 2: {  // all_reduce
          std::vector<float> data(static_cast<std::size_t>(n));
          for (std::int64_t i = 0; i < n; ++i) {
            data[static_cast<std::size_t>(i)] = contribution(c.rank(), i);
          }
          c.all_reduce(data);
          for (std::int64_t i = 0; i < n; ++i) {
            float want = 0.0f;
            for (int r = 0; r < g; ++r) want += contribution(r, i);
            ASSERT_EQ(data[static_cast<std::size_t>(i)], want)
                << "step " << step << " g=" << g << " n=" << n;
          }
          break;
        }
        case 3: {  // all_gather
          std::vector<float> local(static_cast<std::size_t>(n));
          for (std::int64_t i = 0; i < n; ++i) {
            local[static_cast<std::size_t>(i)] = contribution(c.rank(), i);
          }
          std::vector<float> out(static_cast<std::size_t>(n * g));
          c.all_gather(local, out);
          for (int r = 0; r < g; ++r) {
            for (std::int64_t i = 0; i < n; ++i) {
              ASSERT_EQ(out[static_cast<std::size_t>(r * n + i)],
                        contribution(r, i))
                  << "step " << step;
            }
          }
          break;
        }
        case 4: {  // reduce_scatter: chunk r = sum over ranks of that chunk
          std::vector<float> data(static_cast<std::size_t>(n * g));
          for (std::int64_t i = 0; i < n * g; ++i) {
            data[static_cast<std::size_t>(i)] = contribution(c.rank(), i);
          }
          std::vector<float> out(static_cast<std::size_t>(n));
          c.reduce_scatter(data, out);
          for (std::int64_t i = 0; i < n; ++i) {
            float want = 0.0f;
            for (int r = 0; r < g; ++r) {
              want += contribution(r, c.rank() * n + i);
            }
            ASSERT_EQ(out[static_cast<std::size_t>(i)], want)
                << "step " << step;
          }
          break;
        }
        case 5:
          c.barrier();
          break;
        case 6: {  // all_to_all
          std::vector<float> in(static_cast<std::size_t>(n * g));
          for (int d = 0; d < g; ++d) {
            for (std::int64_t i = 0; i < n; ++i) {
              in[static_cast<std::size_t>(d * n + i)] =
                  contribution(c.rank(), d * 1000 + i);
            }
          }
          std::vector<float> out(static_cast<std::size_t>(n * g));
          c.all_to_all(in, out);
          for (int s = 0; s < g; ++s) {
            for (std::int64_t i = 0; i < n; ++i) {
              ASSERT_EQ(out[static_cast<std::size_t>(s * n + i)],
                        contribution(s, c.rank() * 1000 + i))
                  << "step " << step;
            }
          }
          break;
        }
        default:
          break;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollectiveFuzz, ::testing::Range(0, 24));

// Concurrent subgroup stress: split the world into rows and columns and run
// interleaved random collectives on both; results must stay isolated.
class SubgroupFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SubgroupFuzz, RowAndColumnIsolation) {
  const int q = 3;
  World world(q * q);
  Rng seq_rng(static_cast<std::uint64_t>(GetParam()), 0xABCD);
  std::vector<int> kinds;
  for (int i = 0; i < 10; ++i) {
    kinds.push_back(static_cast<int>(seq_rng.next_below(2)));
  }
  world.run([&](Communicator& c) {
    const int i = c.rank() / q;
    const int j = c.rank() % q;
    std::vector<int> row_ranks, col_ranks;
    for (int t = 0; t < q; ++t) {
      row_ranks.push_back(i * q + t);
      col_ranks.push_back(t * q + j);
    }
    Communicator row = c.subgroup(row_ranks);
    Communicator col = c.subgroup(col_ranks);
    for (int k : kinds) {
      Communicator& target = k == 0 ? row : col;
      std::vector<float> v{static_cast<float>(c.rank())};
      target.all_reduce(v);
      float want = 0.0f;
      for (int t = 0; t < q; ++t) {
        want += static_cast<float>(k == 0 ? i * q + t : t * q + j);
      }
      ASSERT_EQ(v[0], want);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubgroupFuzz, ::testing::Range(0, 8));

TEST(MailboxState, NoPendingMessagesAfterCleanRun) {
  World world(6);
  world.run([&](Communicator& c) {
    std::vector<float> v(11, 1.0f);
    c.all_reduce(v);
    c.barrier();
    std::vector<float> out(static_cast<std::size_t>(11 * 6));
    c.all_gather(v, out);
  });
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(world.mailbox(r).pending(), 0u) << "rank " << r;
  }
}

TEST(MailboxState, PoisonUnblocksDirectly) {
  Mailbox mb;
  std::thread t([&] {
    EXPECT_THROW((void)mb.pop(0, 1), std::runtime_error);
  });
  mb.poison("test poison");
  t.join();
}

}  // namespace
}  // namespace tsr::comm
