// Distributed matrix multiplication: every algorithm against the serial
// reference (the paper's own validation protocol, Section 4), across a sweep
// of grid shapes and matrix sizes, plus the Fig. 4 layout round-trips.
#include <gtest/gtest.h>

#include "comm/communicator.hpp"
#include "pdgemm/cannon.hpp"
#include "pdgemm/serial.hpp"
#include "pdgemm/solomonik25d.hpp"
#include "pdgemm/summa.hpp"
#include "pdgemm/tesseract_mm.hpp"
#include "tensor/init.hpp"
#include "tensor/kernels.hpp"

namespace tsr::pdg {
namespace {

constexpr float kTol = 2e-4f;

TEST(Partition, RoundTrip) {
  Rng rng(1);
  Tensor m = random_normal({6, 8}, rng);
  std::vector<Tensor> blocks = partition(m, 3, 2);
  ASSERT_EQ(blocks.size(), 6u);
  EXPECT_EQ(blocks[0].dim(0), 2);
  EXPECT_EQ(blocks[0].dim(1), 4);
  Tensor back = combine(blocks, 3, 2);
  EXPECT_FLOAT_EQ(max_abs_diff(m, back), 0.0f);
}

TEST(Partition, RejectsNonDivisible) {
  Tensor m({5, 4});
  EXPECT_THROW(partition(m, 2, 2), std::invalid_argument);
  EXPECT_THROW(block_of(m, 3, 2, 0, 0), std::invalid_argument);
}

TEST(Grid2DComms, RowColStructure) {
  comm::World world(9);
  world.run([&](comm::Communicator& c) {
    Grid2DComms g = Grid2DComms::create(c, 3);
    EXPECT_EQ(g.row.size(), 3);
    EXPECT_EQ(g.col.size(), 3);
    EXPECT_EQ(g.row.rank(), g.j);
    EXPECT_EQ(g.col.rank(), g.i);
    EXPECT_EQ(g.i * 3 + g.j, c.rank());
  });
}

TEST(Grid2DComms, RejectsWrongSize) {
  comm::World world(6);
  EXPECT_THROW(
      world.run([&](comm::Communicator& c) { Grid2DComms::create(c, 3); }),
      std::invalid_argument);
}

TEST(TesseractComms, Structure) {
  comm::World world(18);
  world.run([&](comm::Communicator& c) {
    TesseractComms tc = TesseractComms::create(c, 3, 2);
    EXPECT_EQ(tc.layer.size(), 9);
    EXPECT_EQ(tc.row.size(), 3);
    EXPECT_EQ(tc.col.size(), 3);
    EXPECT_EQ(tc.depth.size(), 2);
    EXPECT_EQ(tc.row.rank(), tc.j);
    EXPECT_EQ(tc.col.rank(), tc.i);
    EXPECT_EQ(tc.depth.rank(), tc.k);
    EXPECT_EQ(tc.a_block_row(), tc.i + tc.k * 3);
  });
}

TEST(Layouts, ALayoutRoundTrip) {
  Rng rng(2);
  Tensor m = random_normal({12, 8}, rng);  // (q*d) x q = 6 x 2 blocks for q=2,d=3
  comm::World world(12);
  world.run([&](comm::Communicator& c) {
    TesseractComms tc = TesseractComms::create(c, 2, 3);
    Tensor block = distribute_a_layout(tc, m);
    EXPECT_EQ(block.dim(0), 2);  // 12 / (2*3)
    EXPECT_EQ(block.dim(1), 4);  // 8 / 2
    Tensor back = collect_a_layout(tc, block, 12, 8);
    EXPECT_FLOAT_EQ(max_abs_diff(m, back), 0.0f);
  });
}

TEST(Layouts, BLayoutReplicatedAcrossDepth) {
  Rng rng(3);
  Tensor m = random_normal({6, 6}, rng);
  comm::World world(8);
  world.run([&](comm::Communicator& c) {
    TesseractComms tc = TesseractComms::create(c, 2, 2);
    Tensor block = distribute_b_layout(tc, m);
    // Same (i, j) on different layers must hold identical blocks.
    Tensor expected = block_of(m, 2, 2, tc.i, tc.j);
    EXPECT_FLOAT_EQ(max_abs_diff(block, expected), 0.0f);
    Tensor back = collect_b_layout(tc, block, 6, 6);
    EXPECT_FLOAT_EQ(max_abs_diff(m, back), 0.0f);
  });
}

// ---- algorithm sweeps -----------------------------------------------------------

struct MatShape {
  std::int64_t a, b, c;
};

class Summa2DSweep
    : public ::testing::TestWithParam<std::tuple<int, MatShape>> {};

TEST_P(Summa2DSweep, ForwardMatchesSerial) {
  const auto [q, shape] = GetParam();
  Rng rng(10);
  Tensor a = random_normal({shape.a, shape.b}, rng);
  Tensor b = random_normal({shape.b, shape.c}, rng);
  Tensor ref = serial_matmul(a, b);
  comm::World world(q * q);
  world.run([&](comm::Communicator& c) {
    Grid2DComms g = Grid2DComms::create(c, q);
    Tensor got = summa(g, a, b);
    EXPECT_LT(max_abs_diff(got, ref), kTol);
  });
}

TEST_P(Summa2DSweep, GradientFormsMatchSerial) {
  const auto [q, shape] = GetParam();
  Rng rng(11);
  Tensor x = random_normal({shape.a, shape.b}, rng);
  Tensor w = random_normal({shape.b, shape.c}, rng);
  Tensor dy = random_normal({shape.a, shape.c}, rng);
  Tensor dx_ref = serial_matmul(dy, w, Trans::N, Trans::T);
  Tensor dw_ref = serial_matmul(x, dy, Trans::T, Trans::N);
  comm::World world(q * q);
  world.run([&](comm::Communicator& c) {
    Grid2DComms g = Grid2DComms::create(c, q);
    Tensor xb = block_of(x, q, q, g.i, g.j);
    Tensor wb = block_of(w, q, q, g.i, g.j);
    Tensor dyb = block_of(dy, q, q, g.i, g.j);
    Tensor dxb = summa_abt_local(g, dyb, wb);
    Tensor dwb = summa_atb_local(g, xb, dyb);
    EXPECT_LT(max_abs_diff(dxb, block_of(dx_ref, q, q, g.i, g.j)), kTol);
    EXPECT_LT(max_abs_diff(dwb, block_of(dw_ref, q, q, g.i, g.j)), kTol);
  });
}

TEST_P(Summa2DSweep, CannonMatchesSerial) {
  const auto [q, shape] = GetParam();
  Rng rng(12);
  Tensor a = random_normal({shape.a, shape.b}, rng);
  Tensor b = random_normal({shape.b, shape.c}, rng);
  Tensor ref = serial_matmul(a, b);
  comm::World world(q * q);
  world.run([&](comm::Communicator& c) {
    Grid2DComms g = Grid2DComms::create(c, q);
    Tensor got = cannon(g, a, b);
    EXPECT_LT(max_abs_diff(got, ref), kTol);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grids, Summa2DSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(MatShape{12, 24, 12},
                                         MatShape{24, 12, 36},
                                         MatShape{12, 12, 12})));

class TesseractSweep
    : public ::testing::TestWithParam<std::tuple<std::pair<int, int>, MatShape>> {
};

TEST_P(TesseractSweep, ForwardMatchesSerial) {
  const auto [grid, shape] = GetParam();
  const auto [q, d] = grid;
  Rng rng(20);
  Tensor a = random_normal({shape.a, shape.b}, rng);
  Tensor b = random_normal({shape.b, shape.c}, rng);
  Tensor ref = serial_matmul(a, b);
  comm::World world(q * q * d);
  world.run([&](comm::Communicator& c) {
    TesseractComms tc = TesseractComms::create(c, q, d);
    Tensor got = tesseract_matmul(tc, a, b);
    EXPECT_LT(max_abs_diff(got, ref), kTol);
  });
}

TEST_P(TesseractSweep, GradientFormsMatchSerial) {
  const auto [grid, shape] = GetParam();
  const auto [q, d] = grid;
  Rng rng(21);
  Tensor x = random_normal({shape.a, shape.b}, rng);
  Tensor w = random_normal({shape.b, shape.c}, rng);
  Tensor dy = random_normal({shape.a, shape.c}, rng);
  Tensor dx_ref = serial_matmul(dy, w, Trans::N, Trans::T);
  Tensor dw_ref = serial_matmul(x, dy, Trans::T, Trans::N);
  comm::World world(q * q * d);
  world.run([&](comm::Communicator& c) {
    TesseractComms tc = TesseractComms::create(c, q, d);
    Tensor xb = distribute_a_layout(tc, x);
    Tensor wb = distribute_b_layout(tc, w);
    Tensor dyb = distribute_a_layout(tc, dy);
    // dX = dY W^T stays in A-layout.
    Tensor dxb = tesseract_abt_local(tc, dyb, wb);
    Tensor dx = collect_a_layout(tc, dxb, shape.a, shape.b);
    EXPECT_LT(max_abs_diff(dx, dx_ref), kTol);
    // dW = X^T dY needs the depth all-reduce (Section 3.1).
    Tensor dwb = tesseract_atb_local(tc, xb, dyb);
    EXPECT_LT(max_abs_diff(dwb, block_of(dw_ref, q, q, tc.i, tc.j)), kTol);
  });
}

TEST_P(TesseractSweep, WithoutDepthAllReduceGradIsPartial) {
  const auto [grid, shape] = GetParam();
  const auto [q, d] = grid;
  if (d == 1) GTEST_SKIP() << "partial == full at depth 1";
  Rng rng(22);
  Tensor x = random_normal({shape.a, shape.b}, rng);
  Tensor dy = random_normal({shape.a, shape.c}, rng);
  Tensor dw_ref = serial_matmul(x, dy, Trans::T, Trans::N);
  comm::World world(q * q * d);
  world.run([&](comm::Communicator& c) {
    TesseractComms tc = TesseractComms::create(c, q, d);
    Tensor xb = distribute_a_layout(tc, x);
    Tensor dyb = distribute_a_layout(tc, dy);
    Tensor partial = tesseract_atb_local(tc, xb, dyb, /*depth_allreduce=*/false);
    // Summing the partials across depth manually must recover the gradient.
    tc.depth.all_reduce(partial);
    EXPECT_LT(max_abs_diff(partial, block_of(dw_ref, q, q, tc.i, tc.j)), kTol);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grids, TesseractSweep,
    ::testing::Combine(::testing::Values(std::pair{1, 1}, std::pair{2, 1},
                                         std::pair{2, 2}, std::pair{3, 2},
                                         std::pair{3, 3}, std::pair{4, 2}),
                       // a divisible by every q*d in the sweep (lcm = 72),
                       // b and c by every q.
                       ::testing::Values(MatShape{72, 24, 24},
                                         MatShape{72, 12, 36})));

class Solomonik25DSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Solomonik25DSweep, MatchesSerial) {
  const auto [q, d] = GetParam();
  Rng rng(30);
  Tensor a = random_normal({24, 12}, rng);
  Tensor b = random_normal({12, 24}, rng);
  Tensor ref = serial_matmul(a, b);
  comm::World world(q * q * d);
  world.run([&](comm::Communicator& c) {
    TesseractComms tc = TesseractComms::create(c, q, d);
    Tensor got = solomonik25d(tc, a, b);
    EXPECT_LT(max_abs_diff(got, ref), kTol);
  });
}

TEST_P(Solomonik25DSweep, ReduceToLayerZeroOnly) {
  const auto [q, d] = GetParam();
  Rng rng(31);
  Tensor a = random_normal({12, 12}, rng);
  Tensor b = random_normal({12, 12}, rng);
  Tensor ref = serial_matmul(a, b);
  comm::World world(q * q * d);
  world.run([&](comm::Communicator& c) {
    TesseractComms tc = TesseractComms::create(c, q, d);
    Tensor ab = block_of(a, q, q, tc.i, tc.j);
    Tensor bb = block_of(b, q, q, tc.i, tc.j);
    Tensor cb = solomonik25d_local(tc, std::move(ab), std::move(bb),
                                   /*allreduce_depth=*/false);
    if (tc.k == 0) {
      EXPECT_LT(max_abs_diff(cb, block_of(ref, q, q, tc.i, tc.j)), kTol);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Grids, Solomonik25DSweep,
                         ::testing::Values(std::pair{2, 1}, std::pair{2, 2},
                                           std::pair{3, 3}, std::pair{4, 2},
                                           std::pair{4, 4}));

TEST(Solomonik25D, RejectsIndivisibleDepth) {
  comm::World world(12);  // q=2, d=3 -> q % d != 0
  EXPECT_THROW(world.run([&](comm::Communicator& c) {
                 TesseractComms tc = TesseractComms::create(c, 2, 3);
                 Tensor a = Tensor::ones({2, 2});
                 Tensor b = Tensor::ones({2, 2});
                 (void)solomonik25d_local(tc, std::move(a), std::move(b));
               }),
               std::invalid_argument);
}

// The communication-volume ordering the paper's introduction claims:
// at equal processor count, Tesseract moves less data than 2.5-D, which
// moves less than Cannon-with-replication would. Measured, not assumed.
TEST(CommVolume, TesseractBeats25DAt8Ranks) {
  Rng rng(40);
  Tensor a = random_normal({24, 24}, rng);
  Tensor b = random_normal({24, 24}, rng);

  comm::World w_tess(8);
  w_tess.run([&](comm::Communicator& c) {
    TesseractComms tc = TesseractComms::create(c, 2, 2);
    Tensor ab = distribute_a_layout(tc, a);
    Tensor bb = distribute_b_layout(tc, b);
    (void)tesseract_ab_local(tc, ab, bb);
  });

  comm::World w_25d(8);
  w_25d.run([&](comm::Communicator& c) {
    TesseractComms tc = TesseractComms::create(c, 2, 2);
    Tensor ab = block_of(a, 2, 2, tc.i, tc.j);
    Tensor bb = block_of(b, 2, 2, tc.i, tc.j);
    (void)solomonik25d_local(tc, std::move(ab), std::move(bb));
  });

  EXPECT_LT(w_tess.total_stats().bytes_sent, w_25d.total_stats().bytes_sent);
}

}  // namespace
}  // namespace tsr::pdg
