// The auto-parallelization search: candidate enumeration must be the exact
// factorization set (every legal q*q*d*stages == P mapping, no duplicates,
// baselines always present), Pareto extraction must match hand-computed
// oracles, and the whole search must be a deterministic pure function of its
// configuration.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "perf/autotune.hpp"

namespace tsr::perf {
namespace {

/// Small search problem every scoring test shares: 4-rank worlds, tiny dims.
AutotuneConfig small_config(int gpus) {
  AutotuneConfig cfg;
  cfg.gpus = gpus;
  cfg.dims = LayerDims{4, 8, 16, 4};
  cfg.layers = 4;
  cfg.micros = 2;
  cfg.max_stages = 4;
  return cfg;
}

/// Divisibility-friendly model for enumeration tests: hidden and heads
/// divide every q up to 8 and every Megatron p up to 64.
AutotuneConfig enum_config(int gpus) {
  AutotuneConfig cfg;
  cfg.gpus = gpus;
  cfg.dims = LayerDims{8, 4, 128, 64};
  cfg.layers = 8;
  cfg.micros = 2;
  cfg.max_stages = 8;
  return cfg;
}

/// Independent brute-force count of the legal Tesseract mappings: iterate
/// ALL (q, d, stages) triples up to P and count the ones the enumerator's
/// contract admits (zero variants counted once more when d > 1).
int brute_force_tesseract_count(const AutotuneConfig& cfg) {
  int n = 0;
  for (int stages = 1; stages <= cfg.max_stages; ++stages) {
    if (cfg.layers % stages != 0) continue;
    for (int q = 1; q <= cfg.gpus; ++q) {
      if (cfg.dims.hidden % q != 0 || cfg.dims.heads % q != 0) continue;
      for (int d = 1; d <= cfg.gpus; ++d) {
        if (q * q * d * stages != cfg.gpus) continue;
        n += d > 1 ? 2 : 1;
      }
    }
  }
  return n;
}

TEST(Enumerate, ExactSetAtFourGpus) {
  const std::vector<PlanCandidate> cands =
      enumerate_candidates(enum_config(4));
  std::vector<std::string> labels;
  for (const PlanCandidate& c : cands) labels.push_back(c.label());
  const std::vector<std::string> expected = {
      "Megatron-LM [4]",
      "Optimus [2,2]",
      "Tesseract [1,1,4]",
      "Tesseract [1,1,4] zero",
      "Tesseract [2,2,1]",
      "Tesseract [1,1,2] pp2",
      "Tesseract [1,1,2] pp2 zero",
      "Tesseract [1,1,1] pp4",
  };
  EXPECT_EQ(labels, expected);
}

class EnumerateFactorizations : public ::testing::TestWithParam<int> {};

TEST_P(EnumerateFactorizations, LegalUniqueAndComplete) {
  const AutotuneConfig cfg = enum_config(GetParam());
  const std::vector<PlanCandidate> cands = enumerate_candidates(cfg);

  // Baselines first: the model dims divide every grid here, so both exist.
  ASSERT_GE(cands.size(), 2u);
  EXPECT_EQ(cands[0].scheme, Scheme::Megatron1D);
  EXPECT_EQ(cands[0].p, cfg.gpus);
  EXPECT_EQ(cands[1].scheme, Scheme::Optimus2D);
  EXPECT_EQ(cands[1].q * cands[1].q, cfg.gpus);

  std::set<std::string> seen;
  int tesseract = 0;
  for (const PlanCandidate& c : cands) {
    // Every candidate occupies exactly the GPU budget...
    EXPECT_EQ(c.total_ranks(), cfg.gpus) << c.label();
    // ...respects the model/search divisibility constraints...
    if (c.scheme == Scheme::Tesseract) {
      ++tesseract;
      EXPECT_EQ(c.q * c.q * c.d * c.stages, cfg.gpus) << c.label();
      EXPECT_EQ(cfg.dims.hidden % c.q, 0) << c.label();
      EXPECT_EQ(cfg.dims.heads % c.q, 0) << c.label();
      EXPECT_EQ(cfg.layers % c.stages, 0) << c.label();
      EXPECT_LE(c.stages, cfg.max_stages) << c.label();
      if (c.zero) {
        EXPECT_GT(c.d, 1) << c.label();
      }
    } else {
      EXPECT_EQ(c.stages, 1) << c.label();
      EXPECT_FALSE(c.zero) << c.label();
    }
    // ...and appears exactly once.
    EXPECT_TRUE(seen.insert(c.label()).second)
        << "duplicate candidate " << c.label();
  }
  // The enumerator found every legal factorization, per the independent
  // brute-force oracle.
  EXPECT_EQ(tesseract, brute_force_tesseract_count(cfg));
}

INSTANTIATE_TEST_SUITE_P(Budgets, EnumerateFactorizations,
                         ::testing::Values(4, 16, 64));

TEST(Enumerate, BaselinesAbsentWhenDimsDoNotDivide) {
  // 64 heads do not divide into 24 Megatron ranks; 24 is not a square, so
  // no Optimus either. Tesseract grids with q in {1, 2} survive.
  AutotuneConfig cfg = enum_config(24);
  const std::vector<PlanCandidate> cands = enumerate_candidates(cfg);
  ASSERT_FALSE(cands.empty());
  for (const PlanCandidate& c : cands) {
    EXPECT_EQ(c.scheme, Scheme::Tesseract) << c.label();
  }
}

TEST(Pareto, HandComputedOracles) {
  using P3 = std::array<double, 3>;
  // Single point is always on the front.
  EXPECT_EQ(pareto_front({P3{1, 1, 1}}), std::vector<bool>({true}));
  // One dominator kills everything else.
  EXPECT_EQ(pareto_front({P3{1, 2, 3}, P3{2, 1, 3}, P3{3, 3, 3}, P3{1, 1, 1}}),
            std::vector<bool>({false, false, false, true}));
  // Incomparable points all stay.
  EXPECT_EQ(pareto_front({P3{1, 3, 2}, P3{3, 1, 2}, P3{2, 2, 2}}),
            std::vector<bool>({true, true, true}));
  // Equality on some axes + strict improvement on one axis dominates.
  EXPECT_EQ(pareto_front({P3{1, 2, 2}, P3{1, 2, 3}}),
            std::vector<bool>({true, false}));
  // Exact duplicates do not dominate each other: both kept.
  EXPECT_EQ(pareto_front({P3{1, 1, 1}, P3{1, 1, 1}, P3{2, 2, 2}}),
            std::vector<bool>({true, true, false}));
  EXPECT_TRUE(pareto_front({}).empty());
}

TEST(Score, BasicInvariantsOnFourGpus) {
  const AutotuneConfig cfg = small_config(4);
  const std::vector<ScoredCandidate> results = autotune(cfg);
  ASSERT_FALSE(results.empty());
  bool any_pareto = false;
  for (const ScoredCandidate& r : results) {
    any_pareto = any_pareto || r.pareto;
    EXPECT_GT(r.score.step_seconds, 0.0) << r.cand.label();
    EXPECT_GT(r.score.peak_bytes, 0.0) << r.cand.label();
    // The canned straggler can only slow a step down.
    EXPECT_GE(r.score.straggler_inflation, 1.0) << r.cand.label();
    // The breakdown adds up to the headline number.
    EXPECT_NEAR(r.score.step_seconds,
                r.score.fwd_seconds + r.score.bwd_seconds +
                    r.score.bubble_seconds + r.score.opt_seconds,
                1e-12)
        << r.cand.label();
    if (r.cand.stages == 1) {
      EXPECT_EQ(r.score.bubble_seconds, 0.0) << r.cand.label();
    } else {
      EXPECT_GT(r.score.bubble_seconds, 0.0) << r.cand.label();
    }
    // q = 1 grids have singleton row/col groups (no forward comm) and the
    // depth gradient all-reduce only appears in the backward replay.
    if (r.cand.scheme != Scheme::Tesseract || r.cand.q > 1) {
      EXPECT_GT(r.score.fwd_stats.msgs_sent, 0) << r.cand.label();
    }
    if (r.cand.scheme == Scheme::Tesseract && r.cand.d > 1) {
      EXPECT_GT(r.score.bwd_stats.msgs_sent, 0) << r.cand.label();
    }
  }
  EXPECT_TRUE(any_pareto);
}

TEST(Score, ZeroShardsOptimizerState) {
  const AutotuneConfig cfg = small_config(4);
  PlanCandidate plain;  // Tesseract [1,1,4]
  plain.q = 1;
  plain.d = 4;
  PlanCandidate zero = plain;
  zero.zero = true;
  const PlanScore a = score_candidate(cfg, plain);
  const PlanScore b = score_candidate(cfg, zero);
  // ZeRO-1 divides the Adam moments across the depth group...
  EXPECT_NEAR(b.opt_state_bytes, a.opt_state_bytes / 4.0,
              a.opt_state_bytes * 1e-9);
  EXPECT_LT(b.peak_bytes, a.peak_bytes);
  // ...and pays a value all-gather for it.
  EXPECT_GT(b.opt_seconds, 0.0);
  // Weights and activations are untouched by optimizer sharding.
  EXPECT_EQ(a.weight_bytes, b.weight_bytes);
  EXPECT_EQ(a.activation_bytes, b.activation_bytes);
}

TEST(Search, DeterministicAcrossRuns) {
  const AutotuneConfig cfg = small_config(4);
  const std::string a = autotune_to_json(cfg, autotune(cfg)).dump(2);
  const std::string b = autotune_to_json(cfg, autotune(cfg)).dump(2);
  EXPECT_EQ(a, b);
}

TEST(Search, JsonDocumentShape) {
  const AutotuneConfig cfg = small_config(4);
  const std::vector<ScoredCandidate> results = autotune(cfg);
  const obs::JsonValue doc = autotune_to_json(cfg, results);
  ASSERT_NE(doc.find("cases"), nullptr);
  EXPECT_EQ(doc.find("cases")->size(), results.size());
  ASSERT_NE(doc.find("pareto"), nullptr);
  EXPECT_GT(doc.find("pareto")->size(), 0u);
  ASSERT_NE(doc.find("config"), nullptr);
  EXPECT_NE(doc.find("config")->find("straggler_scale"), nullptr);
  // The envelope's fault plan fingerprints the search's canned straggler,
  // independent of whatever Worlds ran earlier in this process.
  ASSERT_NE(doc.find("fault_plan"), nullptr);
  EXPECT_NE(doc.find("fault_plan")->as_string(), "none");
}

TEST(Explain, ReportComesFromTheRollupMachinery) {
  AutotuneConfig cfg = small_config(4);
  PlanCandidate cand;  // Tesseract [2,2,1]
  cand.q = 2;
  cand.d = 1;
  cfg.gpus = cand.total_ranks();
  PlanScore score;
  const RunReport rep = explain_candidate(cfg, cand, &score);
  EXPECT_EQ(rep.name, cand.label());
  ASSERT_EQ(rep.ranks.size(), 4u);
  EXPECT_GT(rep.makespan, 0.0);
  for (const auto& r : rep.ranks) EXPECT_GT(r.compute, 0.0);
  EXPECT_GT(score.step_seconds, 0.0);
}

TEST(Config, EnvOverridesAndValidation) {
  ::setenv("TESSERACT_PLAN_GPUS", "32", 1);
  ::setenv("TESSERACT_PLAN_MICROS", "8", 1);
  ::setenv("TESSERACT_PLAN_MAX_STAGES", "2", 1);
  ::setenv("TESSERACT_PLAN_STRAGGLER_SCALE", "2.5", 1);
  AutotuneConfig cfg = AutotuneConfig::from_env();
  EXPECT_EQ(cfg.gpus, 32);
  EXPECT_EQ(cfg.micros, 8);
  EXPECT_EQ(cfg.max_stages, 2);
  EXPECT_DOUBLE_EQ(cfg.straggler_scale, 2.5);

  // A misconfigured search fails loudly instead of searching the wrong space.
  ::setenv("TESSERACT_PLAN_GPUS", "zero", 1);
  EXPECT_THROW(AutotuneConfig::from_env(), std::runtime_error);
  ::setenv("TESSERACT_PLAN_GPUS", "-4", 1);
  EXPECT_THROW(AutotuneConfig::from_env(), std::runtime_error);
  ::unsetenv("TESSERACT_PLAN_GPUS");
  ::setenv("TESSERACT_PLAN_STRAGGLER_SCALE", "0.5", 1);
  EXPECT_THROW(AutotuneConfig::from_env(), std::runtime_error);

  ::unsetenv("TESSERACT_PLAN_MICROS");
  ::unsetenv("TESSERACT_PLAN_MAX_STAGES");
  ::unsetenv("TESSERACT_PLAN_STRAGGLER_SCALE");
  cfg = AutotuneConfig::from_env();
  EXPECT_EQ(cfg.gpus, 64);  // back to the defaults
}

}  // namespace
}  // namespace tsr::perf
