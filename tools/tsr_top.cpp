// tsr_top: terminal dashboard over a live-telemetry TIMELINE stream.
//
//   tsr_top replay <TIMELINE.json> [--window N] [--all] [--plain]
//       Renders the dashboard for one window of a finished (or partial)
//       timeline: the last flushed window by default, window N with
//       --window, every window in sequence with --all. Exit code 0 when the
//       file parsed, 3 when the timeline contains drift events (so CI can
//       gate on "clean run stayed clean" with the same invocation).
//   tsr_top follow <TIMELINE.json> [--poll-ms M] [--timeout-s S] [--plain]
//       Tails a growing timeline while the instrumented run executes,
//       re-rendering the dashboard as windows complete. Exits when the final
//       summary line appears (0, or 3 with drift) or the timeout expires (4).
//
// The dashboard is plain ASCII; --plain additionally suppresses the ANSI
// clear/home sequences so output can be piped or checked in CI logs. Every
// line of a TIMELINE stream is a self-contained JSON document (header,
// window, drift event or final summary), so the parser here is a loop over
// obs::json_parse — the same schema the run report embeds.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"

using tsr::obs::JsonValue;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: tsr_top <subcommand>\n"
               "  replay <TIMELINE.json> [--window N] [--all] [--plain]\n"
               "  follow <TIMELINE.json> [--poll-ms M] [--timeout-s S] "
               "[--plain]\n");
  return 2;
}

double num(const JsonValue& v, const char* key, double dflt = 0.0) {
  const JsonValue* f = v.find(key);
  return f != nullptr && f->is_number() ? f->as_double() : dflt;
}

std::string str(const JsonValue& v, const char* key, const char* dflt = "") {
  const JsonValue* f = v.find(key);
  return f != nullptr && f->is_string() ? f->as_string() : std::string(dflt);
}

// Parsed state of a timeline stream, updated line by line.
struct Timeline {
  // Header.
  bool have_header = false;
  std::string label;
  double interval = 0.0;
  int nranks = 0;
  std::string fault_plan;
  // Last two windows (cumulative samples: deltas need the predecessor).
  bool have_window = false;
  JsonValue window;       // last window object
  JsonValue prev_window;  // its predecessor (null object if none)
  int windows_seen = 0;
  // Drift events, rendered as a scrolling footer.
  std::vector<std::string> drift_lines;
  int drift_events = 0;
  // Final summary (empty until the stream ends).
  bool have_final = false;
  std::string final_line;

  // Consumes one line; returns false (with *err set) on parse failure.
  bool consume(const std::string& line, std::string* err) {
    if (line.empty()) return true;
    const JsonValue v = tsr::obs::json_parse(line, err);
    if (!err->empty()) return false;
    consume_doc(v);
    return true;
  }

  // Consumes one already-parsed stream document.
  void consume_doc(const JsonValue& v) {
    if (v.find("kind") != nullptr) {
      have_header = true;
      label = str(v, "label");
      interval = num(v, "interval");
      nranks = static_cast<int>(num(v, "nranks"));
      fault_plan = str(v, "fault_plan", "none");
      return;
    }
    if (const JsonValue* d = v.find("drift")) {
      drift_events += 1;
      std::ostringstream os;
      os << "  [w" << static_cast<long long>(num(*d, "window"))
         << "] " << str(*d, "type");
      const long long rank = static_cast<long long>(num(*d, "rank", -1));
      if (rank >= 0) os << " rank=" << rank;
      const double factor = num(*d, "factor");
      if (factor > 0.0) {
        char buf[32];
        std::snprintf(buf, sizeof buf, " factor=%.2f", factor);
        os << buf;
      }
      drift_lines.push_back(os.str());
      return;
    }
    if (const JsonValue* f = v.find("final")) {
      have_final = true;
      std::ostringstream os;
      os << "final: windows=" << static_cast<long long>(num(*f, "windows"))
         << " samples=" << static_cast<long long>(num(*f, "samples"))
         << " makespan=" << num(*f, "makespan")
         << " drift_events=" << static_cast<long long>(num(*f, "drift_events"));
      final_line = os.str();
      return;
    }
    if (v.find("w") != nullptr) {
      prev_window = have_window ? window : JsonValue::object();
      window = v;
      have_window = true;
      windows_seen += 1;
    }
  }
};

// Renders the dashboard for tl.window (per-window deltas vs prev_window).
void render(const Timeline& tl, const JsonValue& win, const JsonValue& prev,
            bool plain) {
  if (!plain) std::printf("\x1b[H\x1b[2J");  // home + clear
  std::printf("tsr_top — %s  interval=%gs  ranks=%d  fault_plan=%s\n",
              tl.label.c_str(), tl.interval, tl.nranks, tl.fault_plan.c_str());
  const int w = static_cast<int>(num(win, "w"));
  std::printf("window %d  t=[%g, %g)\n\n", w, w * tl.interval,
              (w + 1) * tl.interval);
  std::printf(
      "rank      ops     msgs        bytes   mem(B)  busy [compute=# wire=+ "
      "wait=-]\n");
  const JsonValue* ranks = win.find("ranks");
  const JsonValue* pranks = prev.find("ranks");
  const std::size_t n = ranks != nullptr ? ranks->size() : 0;
  for (std::size_t r = 0; r < n; ++r) {
    const JsonValue& cur = ranks->items()[r];
    const bool have_prev = pranks != nullptr && r < pranks->size();
    const auto delta = [&](const char* key) {
      return num(cur, key) - (have_prev ? num(pranks->items()[r], key) : 0.0);
    };
    const double interval = tl.interval > 0.0 ? tl.interval : 1.0;
    const double fc = delta("compute_s") / interval;
    const double fw = delta("wire_s") / interval;
    const double fb = delta("wait_s") / interval;
    // One 30-char bar, tiled compute then wire then wait.
    const int width = 30;
    const int nc = static_cast<int>(fc * width + 0.5);
    const int nw = static_cast<int>(fw * width + 0.5);
    const int nb = static_cast<int>(fb * width + 0.5);
    std::string tile;
    tile.append(static_cast<std::size_t>(nc < width ? nc : width), '#');
    if (static_cast<int>(tile.size()) < width) {
      tile.append(static_cast<std::size_t>(
                      nw < width - static_cast<int>(tile.size())
                          ? nw
                          : width - static_cast<int>(tile.size())),
                  '+');
    }
    if (static_cast<int>(tile.size()) < width) {
      tile.append(static_cast<std::size_t>(
                      nb < width - static_cast<int>(tile.size())
                          ? nb
                          : width - static_cast<int>(tile.size())),
                  '-');
    }
    tile.append(static_cast<std::size_t>(width - tile.size()), '.');
    const bool dead = cur.find("dead") != nullptr;
    std::printf("%4zu%s %7lld %8lld %12lld %8lld  [%s] %3.0f%%\n", r,
                dead ? "x" : " ", static_cast<long long>(delta("ops")),
                static_cast<long long>(delta("msgs")),
                static_cast<long long>(delta("bytes")),
                static_cast<long long>(num(cur, "live_bytes")), tile.c_str(),
                100.0 * (fc + fw + fb));
  }
  if (!tl.drift_lines.empty()) {
    std::printf("\ndrift events:\n");
    const std::size_t show =
        tl.drift_lines.size() > 8 ? tl.drift_lines.size() - 8 : 0;
    for (std::size_t i = show; i < tl.drift_lines.size(); ++i) {
      std::printf("%s\n", tl.drift_lines[i].c_str());
    }
  }
  if (tl.have_final) std::printf("\n%s\n", tl.final_line.c_str());
}

int finish_code(const Timeline& tl) { return tl.drift_events > 0 ? 3 : 0; }

int cmd_replay(int argc, char** argv) {
  if (argc < 1) return usage();
  const char* path = argv[0];
  int window = -1;
  bool all = false;
  bool plain = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
      window = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--all") == 0) {
      all = true;
    } else if (std::strcmp(argv[i], "--plain") == 0) {
      plain = true;
    } else {
      return usage();
    }
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "tsr_top: cannot open %s\n", path);
    return 1;
  }
  Timeline tl;
  std::string line, err;
  while (std::getline(in, line)) {
    if (!tl.consume(line, &err)) {
      std::fprintf(stderr, "tsr_top: %s: %s\n", path, err.c_str());
      return 1;
    }
    if (tl.have_window && tl.window.find("w") != nullptr) {
      const int w = static_cast<int>(num(tl.window, "w"));
      const bool selected = window >= 0 && w == window;
      if ((all || selected) && tl.windows_seen > 0) {
        render(tl, tl.window, tl.prev_window, /*plain=*/true);
        std::printf("\n");
        if (selected) return finish_code(tl);
      }
    }
  }
  if (!tl.have_header) {
    std::fprintf(stderr, "tsr_top: %s: not a timeline stream\n", path);
    return 1;
  }
  if (window >= 0) {
    std::fprintf(stderr, "tsr_top: window %d not found in %s\n", window, path);
    return 1;
  }
  if (!all) {
    if (!tl.have_window) {
      std::printf("tsr_top — %s: no completed windows\n", tl.label.c_str());
      if (tl.have_final) std::printf("%s\n", tl.final_line.c_str());
      return finish_code(tl);
    }
    render(tl, tl.window, tl.prev_window, plain);
  }
  return finish_code(tl);
}

int cmd_follow(int argc, char** argv) {
  if (argc < 1) return usage();
  const char* path = argv[0];
  int poll_ms = 200;
  double timeout_s = 60.0;
  bool plain = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--poll-ms") == 0 && i + 1 < argc) {
      poll_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--timeout-s") == 0 && i + 1 < argc) {
      timeout_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--plain") == 0) {
      plain = true;
    } else {
      return usage();
    }
  }
  Timeline tl;
  std::streamoff offset = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      in.seekg(offset);
      std::ostringstream chunk;
      chunk << in.rdbuf();
      const std::string data = chunk.str();
      bool rendered = false;
      // The shared JSONL scanner owns the concurrent-writer protocol: only
      // bytes up to the last fully parsed line are consumed, so a torn
      // trailing line — or trailing bytes with no newline yet — is simply
      // re-read fresh on the next poll. A line that never completes runs
      // into the timeout (exit 4) instead of failing the stream; a parse
      // failure with data after it is genuine corruption.
      const tsr::obs::JsonlScan scan =
          tsr::obs::scan_jsonl(data, [&](JsonValue v) {
            tl.consume_doc(v);
            rendered = true;
          });
      if (scan.status == tsr::obs::JsonlScan::Status::Corrupt) {
        std::fprintf(stderr, "tsr_top: %s: %s\n", path, scan.error.c_str());
        return 1;
      }
      offset += static_cast<std::streamoff>(scan.consumed);
      if (rendered && tl.have_window) {
        render(tl, tl.window, tl.prev_window, plain);
      }
      if (tl.have_final) {
        if (!tl.have_window) std::printf("%s\n", tl.final_line.c_str());
        return finish_code(tl);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
  }
  std::fprintf(stderr, "tsr_top: timed out after %gs waiting on %s\n",
               timeout_s, path);
  return 4;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "replay") return cmd_replay(argc - 2, argv + 2);
  if (cmd == "follow") return cmd_follow(argc - 2, argv + 2);
  return usage();
}
