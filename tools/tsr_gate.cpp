// tsr_gate: record benchmark artifacts into the perf-history ledger and
// gate new runs against it.
//
//   tsr_gate record <ledger.jsonl> <artifact.json...>
//       Ingests each BENCH_*/REPORT_* document into the append-only ledger.
//       Re-recording a document identical to the latest record of its
//       series is a no-op; a torn trailing line (from an interrupted
//       append) is healed in place.
//   tsr_gate compare <ledger.jsonl> <artifact.json...> [--deterministic-only] [--verbose]
//       Prints the per-metric delta table against the latest same-series
//       ledger records — deterministic metrics at threshold 0, host
//       wall-clock metrics against the noise band of their same-environment
//       history — and always exits 0. --verbose includes in-band host rows.
//   tsr_gate gate <ledger.jsonl> <artifact.json...> [--deterministic-only] [--verbose]
//       Same comparison, but exits 1 on any regression or structural
//       mismatch: the CI hard gate. --deterministic-only restricts the
//       check to the simulated-clock metrics, the mode for gating against a
//       baseline ledger committed from another machine.
//   tsr_gate history <ledger.jsonl> [--source S] [--metric M]
//       Lists the recorded series (or one series' records with --source;
//       one metric's value trajectory with --metric).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/ledger.hpp"

using namespace tsr;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: tsr_gate <subcommand>\n"
      "  record <ledger.jsonl> <artifact.json...>\n"
      "  compare <ledger.jsonl> <artifact.json...> [--deterministic-only] "
      "[--verbose]\n"
      "  gate <ledger.jsonl> <artifact.json...> [--deterministic-only] "
      "[--verbose]\n"
      "  history <ledger.jsonl> [--source S] [--metric M]\n");
  return 2;
}

bool load_json(const char* path, obs::JsonValue* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "tsr_gate: cannot open %s\n", path);
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string err;
  *out = obs::json_parse(ss.str(), &err);
  if (!err.empty()) {
    std::fprintf(stderr, "tsr_gate: %s: %s\n", path, err.c_str());
    return false;
  }
  return true;
}

bool load_ledger(const char* path, obs::Ledger* ledger) {
  std::string err;
  if (!obs::Ledger::load(path, ledger, &err)) {
    std::fprintf(stderr, "tsr_gate: %s\n", err.c_str());
    return false;
  }
  if (ledger->torn_tail()) {
    std::fprintf(stderr,
                 "tsr_gate: %s: torn trailing line ignored (will be healed "
                 "by the next record)\n",
                 path);
  }
  return true;
}

int cmd_record(int argc, char** argv) {
  if (argc < 2) return usage();
  obs::Ledger ledger;
  if (!load_ledger(argv[0], &ledger)) return 1;
  for (int i = 1; i < argc; ++i) {
    obs::JsonValue doc;
    if (!load_json(argv[i], &doc)) return 1;
    obs::LedgerRecord rec;
    std::string err;
    if (!obs::ingest_document(doc, &rec, &err)) {
      std::fprintf(stderr, "tsr_gate: %s: %s\n", argv[i], err.c_str());
      return 1;
    }
    bool appended = false;
    if (!ledger.append(rec, &appended, &err)) {
      std::fprintf(stderr, "tsr_gate: %s: %s\n", argv[i], err.c_str());
      return 1;
    }
    if (appended) {
      std::printf("recorded %s as seq %lld (%zu metrics, git %s%s)\n",
                  rec.series_key().c_str(),
                  static_cast<long long>(ledger.records().back().seq),
                  rec.metrics.size(), rec.git_sha.c_str(),
                  rec.git_dirty ? "+dirty" : "");
    } else {
      std::printf("skipped %s: identical to the latest record\n",
                  rec.series_key().c_str());
    }
  }
  return 0;
}

int cmd_gate(int argc, char** argv, bool hard) {
  if (argc < 2) return usage();
  obs::GateOptions opt;
  bool verbose = false;
  std::vector<const char*> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--deterministic-only") == 0) {
      opt.deterministic_only = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty()) return usage();
  obs::Ledger ledger;
  if (!load_ledger(argv[0], &ledger)) return 1;
  std::vector<obs::JsonValue> docs;
  for (const char* path : paths) {
    obs::JsonValue doc;
    if (!load_json(path, &doc)) return 1;
    docs.push_back(std::move(doc));
  }
  const obs::GateReport rep = obs::gate_documents(ledger, docs, opt);
  std::printf("%s", rep.to_string(verbose).c_str());
  if (hard && rep.failed()) {
    std::fprintf(stderr, "tsr_gate: gate FAILED against %s\n", argv[0]);
    return 1;
  }
  return 0;
}

int cmd_history(int argc, char** argv) {
  if (argc < 1) return usage();
  std::string source, metric;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--source") == 0 && i + 1 < argc) {
      source = argv[++i];
    } else if (std::strcmp(argv[i], "--metric") == 0 && i + 1 < argc) {
      metric = argv[++i];
    } else {
      return usage();
    }
  }
  obs::Ledger ledger;
  if (!load_ledger(argv[0], &ledger)) return 1;
  if (source.empty() && metric.empty()) {
    // Series overview: count + latest provenance per series, in first-seen
    // order.
    std::vector<std::string> order;
    std::map<std::string, int> counts;
    for (const obs::LedgerRecord& rec : ledger.records()) {
      if (counts[rec.series_key()]++ == 0) order.push_back(rec.series_key());
    }
    for (const std::string& key : order) {
      const obs::LedgerRecord* last = ledger.latest(key);
      std::printf("%-40s %3d record%s latest seq %lld git %s%s %s W%lld\n",
                  key.c_str(), counts[key], counts[key] == 1 ? ", " : "s,",
                  static_cast<long long>(last->seq), last->git_sha.c_str(),
                  last->git_dirty ? "+dirty" : "", last->backend.c_str(),
                  static_cast<long long>(last->workers));
    }
    std::printf("%zu record(s), %zu series\n", ledger.records().size(),
                order.size());
    return 0;
  }
  int shown = 0;
  for (const obs::LedgerRecord& rec : ledger.records()) {
    if (!source.empty() &&
        rec.series_key().find(source) == std::string::npos) {
      continue;
    }
    if (!metric.empty()) {
      const double* v = rec.find_metric(metric);
      if (v == nullptr) continue;
      std::printf("seq %-4lld git %s%-7s %-18s %.17g\n",
                  static_cast<long long>(rec.seq), rec.git_sha.c_str(),
                  rec.git_dirty ? "+dirty" : "", rec.series_key().c_str(),
                  *v);
    } else {
      std::printf("seq %-4lld git %s%-7s %-18s %zu metrics, %s W%lld %s\n",
                  static_cast<long long>(rec.seq), rec.git_sha.c_str(),
                  rec.git_dirty ? "+dirty" : "", rec.series_key().c_str(),
                  rec.metrics.size(), rec.backend.c_str(),
                  static_cast<long long>(rec.workers),
                  rec.fault_plan.c_str());
    }
    shown += 1;
  }
  if (shown == 0) {
    std::printf("no matching records in %s\n", argv[0]);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "record") return cmd_record(argc - 2, argv + 2);
  if (cmd == "compare") return cmd_gate(argc - 2, argv + 2, /*hard=*/false);
  if (cmd == "gate") return cmd_gate(argc - 2, argv + 2, /*hard=*/true);
  if (cmd == "history") return cmd_history(argc - 2, argv + 2);
  return usage();
}
