// tsr_report: inspect, render and regression-gate Tesseract run reports.
//
//   tsr_report gen <name> [--seed S] [--straggler R:SCALE]
//       Runs the reference workload — one Tesseract [2,2,2] Transformer-layer
//       forward + backward on 8 simulated ranks — with tracing, metrics and
//       live telemetry on, and writes REPORT_<name>.json + REPORT_<name>.html
//       + TIMELINE_<name>.json into the current directory. The run is
//       deterministic: two invocations with the same seed produce reports
//       and timelines that `diff` clean, on any scheduler backend.
//   tsr_report summarize <report.json>
//       Prints the human-readable summary of a report.
//   tsr_report html <report.json> <out.html>
//       Renders a report document to the self-contained HTML page.
//   tsr_report diff <a.json> <b.json> [--threshold F]
//       Compares two reports field by field, ignoring the environment
//       envelope. Exits nonzero when any numeric field moved by more than
//       the relative threshold (default 0: equality up to float-accumulation
//       noise) or the documents differ structurally. This is the CI
//       determinism / regression gate.
//   tsr_report flame <name> [--seed S] [--straggler R:SCALE]
//       Re-runs the reference workload and writes FLAME_<name>.folded: the
//       per-rank span tree collapsed into flamegraph folded stacks (counts
//       in simulated seconds). `gen` writes the same file alongside its
//       report, so `flame` exists for regenerating one without the
//       report/timeline churn. Byte-identical across scheduler backends.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "fault/fault.hpp"
#include "obs/expect.hpp"
#include "obs/json.hpp"
#include "obs/live.hpp"
#include "parallel/dist.hpp"
#include "parallel/tesseract_transformer.hpp"
#include "perf/flame.hpp"
#include "perf/run_report.hpp"
#include "tensor/init.hpp"

using namespace tsr;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: tsr_report <subcommand>\n"
               "  gen <name> [--seed S] [--straggler R:SCALE]\n"
               "  summarize <report.json>\n"
               "  html <report.json> <out.html>\n"
               "  diff <a.json> <b.json> [--threshold F]\n"
               "  flame <name> [--seed S] [--straggler R:SCALE]\n");
  return 2;
}

bool load_json(const char* path, obs::JsonValue* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "tsr_report: cannot open %s\n", path);
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string err;
  *out = obs::json_parse(ss.str(), &err);
  if (!err.empty()) {
    std::fprintf(stderr, "tsr_report: %s: %s\n", path, err.c_str());
    return false;
  }
  return true;
}

struct GenArgs {
  std::string name;
  std::uint64_t seed = 7;
  int straggler_rank = -2;
  double straggler_scale = 1.0;
};

bool parse_gen_args(int argc, char** argv, GenArgs* out) {
  if (argc < 1) return false;
  out->name = argv[0];
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      out->seed =
          static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--straggler") == 0 && i + 1 < argc) {
      const char* spec = argv[++i];
      char* colon = nullptr;
      out->straggler_rank = static_cast<int>(std::strtol(spec, &colon, 10));
      if (colon == nullptr || *colon != ':') return false;
      out->straggler_scale = std::strtod(colon + 1, nullptr);
    } else {
      return false;
    }
  }
  return true;
}

// The reference workload behind `gen` and `flame`: one Tesseract [2,2,2]
// Transformer-layer forward + backward on 8 ranks — small enough to run in
// well under a second, rich enough that the report has nonzero compute,
// wire and wait buckets on every rank. `monitor` (with the live plane) is
// only attached when `live` is set; tracing and metrics are always on.
std::unique_ptr<comm::World> run_reference(const GenArgs& args, bool live,
                                           obs::ExpectationMonitor* monitor) {
  constexpr std::int64_t kBatch = 4, kSeq = 8, kHidden = 64, kHeads = 4;
  Rng data_rng(args.seed);
  Tensor x = random_normal({kBatch, kSeq, kHidden}, data_rng);
  Tensor dy = random_normal({kBatch, kSeq, kHidden}, data_rng);

  auto world =
      std::make_unique<comm::World>(8, topo::MachineSpec::meluxina());
  world->enable_tracing();
  world->enable_metrics();
  if (args.straggler_rank >= -1) {
    fault::FaultPlan plan;
    plan.slow_ranks.push_back({args.straggler_rank, args.straggler_scale});
    world->install_fault_plan(plan);
  }
  if (live) {
    obs::LiveConfig live_cfg;
    live_cfg.interval = 2e-5;  // workload spans ~1ms: tens of windows
    live_cfg.label = args.name;
    live_cfg.path = "TIMELINE_" + args.name + ".json";
    world->enable_live(live_cfg);
    world->live()->set_monitor(monitor);
  }
  world->run([&](comm::Communicator& c) {
    par::TesseractContext ctx(c, 2, 2);
    Rng wrng(args.seed + 1);
    par::TesseractTransformerLayer layer(ctx, kHidden, kHeads, wrng);
    Tensor xl = par::distribute_activation(ctx.comms(), x);
    Tensor dyl = par::distribute_activation(ctx.comms(), dy);
    (void)layer.forward(xl);
    (void)layer.backward(dyl);
  });
  if (live) world->finish_live();
  return world;
}

int cmd_gen(int argc, char** argv) {
  GenArgs args;
  if (!parse_gen_args(argc, argv, &args)) return usage();
  // Peer-relative drift detection only (no cost-model profile for this
  // hand-built workload): flags the --straggler rank, silent otherwise.
  obs::ExpectationMonitor monitor(obs::ExpectationProfile{}, obs::DriftConfig{},
                                  8);
  const auto world = run_reference(args, /*live=*/true, &monitor);
  const std::string& name = args.name;

  if (!perf::write_run_report(*world, name)) {
    std::fprintf(stderr, "tsr_report: failed to write REPORT_%s.{json,html}\n",
                 name.c_str());
    return 1;
  }
  if (!perf::write_flamegraph(*world, "FLAME_" + name + ".folded")) {
    std::fprintf(stderr, "tsr_report: failed to write FLAME_%s.folded\n",
                 name.c_str());
    return 1;
  }
  const perf::RunReport rep = perf::build_run_report(*world, name);
  std::printf("%s", rep.to_string().c_str());
  std::printf(
      "\nwrote REPORT_%s.json, REPORT_%s.html, TIMELINE_%s.json and "
      "FLAME_%s.folded\n",
      name.c_str(), name.c_str(), name.c_str(), name.c_str());
  return 0;
}

int cmd_flame(int argc, char** argv) {
  GenArgs args;
  if (!parse_gen_args(argc, argv, &args)) return usage();
  const auto world = run_reference(args, /*live=*/false, nullptr);
  const std::string path = "FLAME_" + args.name + ".folded";
  if (!perf::write_flamegraph(*world, path)) {
    std::fprintf(stderr, "tsr_report: failed to write %s\n", path.c_str());
    return 1;
  }
  const std::vector<perf::FoldedLine> lines = perf::fold_traces(*world);
  std::printf("wrote %s (%zu stacks over %d ranks)\n", path.c_str(),
              lines.size(), world->size());
  return 0;
}

int cmd_summarize(int argc, char** argv) {
  if (argc != 1) return usage();
  obs::JsonValue doc;
  if (!load_json(argv[0], &doc)) return 1;
  std::printf("%s", perf::RunReport::run_report_summary(doc).c_str());
  return 0;
}

int cmd_html(int argc, char** argv) {
  if (argc != 2) return usage();
  obs::JsonValue doc;
  if (!load_json(argv[0], &doc)) return 1;
  std::ofstream out(argv[1]);
  if (!out) {
    std::fprintf(stderr, "tsr_report: cannot write %s\n", argv[1]);
    return 1;
  }
  out << perf::RunReport::run_report_html(doc);
  std::printf("wrote %s\n", argv[1]);
  return 0;
}

int cmd_diff(int argc, char** argv) {
  if (argc < 2) return usage();
  double threshold = 0.0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::strtod(argv[++i], nullptr);
    } else {
      return usage();
    }
  }
  obs::JsonValue a, b;
  if (!load_json(argv[0], &a) || !load_json(argv[1], &b)) return 1;
  const perf::ReportDiffResult res = perf::diff_run_reports(a, b, threshold);
  std::printf("%s", res.to_string().c_str());
  if (res.failed()) {
    std::fprintf(stderr, "tsr_report: diff FAILED (threshold %g)\n", threshold);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "gen") return cmd_gen(argc - 2, argv + 2);
  if (cmd == "summarize") return cmd_summarize(argc - 2, argv + 2);
  if (cmd == "html") return cmd_html(argc - 2, argv + 2);
  if (cmd == "diff") return cmd_diff(argc - 2, argv + 2);
  if (cmd == "flame") return cmd_flame(argc - 2, argv + 2);
  return usage();
}
