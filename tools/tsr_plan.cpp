// tsr_plan: the auto-parallelization planner front-end (perf/autotune.hpp).
//
//   tsr_plan plan [--gpus P] [--layers N] [--micros M] [--max-stages S]
//                 [--straggler-scale F] [--batch B] [--seq L] [--hidden H]
//                 [--heads N] [--out FILE]
//       Enumerates every legal mapping of the model onto P GPUs (Tesseract
//       [q,q,d] grids, Megatron-LM / Optimus baselines, pipeline stages,
//       ZeRO-1), scores each via phantom replay, prints the candidate table
//       sorted by predicted step time with the Pareto front starred, and
//       writes the full BENCH_autotune.json document (schema:
//       docs/planning.md). Defaults come from the TESSERACT_PLAN_*
//       environment; flags win over the environment.
//   tsr_plan explain (--megatron P | --optimus Q | --tesseract Q D)
//                    [--stages S] [--zero] [model flags] [--out FILE]
//       Scores ONE candidate and prints its full cost breakdown plus the
//       per-rank run report (the same compute/wire/wait/idle attribution and
//       collective rollups tsr_report prints) from a traced replay of one
//       training step. --out writes the report document as JSON.
//   tsr_plan diff <a.json> <b.json> [--threshold F]
//       Field-by-field comparison of two planner documents, ignoring the
//       environment envelope — the CI gate proving the search is
//       bit-reproducible across scheduler backends.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "perf/autotune.hpp"
#include "perf/run_report.hpp"

using namespace tsr;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: tsr_plan <subcommand>\n"
      "  plan [--gpus P] [--layers N] [--micros M] [--max-stages S]\n"
      "       [--straggler-scale F] [--batch B] [--seq L] [--hidden H]\n"
      "       [--heads N] [--out FILE]\n"
      "  explain (--megatron P | --optimus Q | --tesseract Q D)\n"
      "          [--stages S] [--zero] [model flags] [--out FILE]\n"
      "  diff <a.json> <b.json> [--threshold F]\n");
  return 2;
}

bool load_json(const char* path, obs::JsonValue* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "tsr_plan: cannot open %s\n", path);
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string err;
  *out = obs::json_parse(ss.str(), &err);
  if (!err.empty()) {
    std::fprintf(stderr, "tsr_plan: %s: %s\n", path, err.c_str());
    return false;
  }
  return true;
}

bool parse_int_flag(const char* flag, const char* value, int* out) {
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || v < 1) {
    std::fprintf(stderr, "tsr_plan: %s wants a positive integer, got %s\n",
                 flag, value);
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

bool parse_i64_flag(const char* flag, const char* value, std::int64_t* out) {
  int v = 0;
  if (!parse_int_flag(flag, value, &v)) return false;
  *out = v;
  return true;
}

/// Shared model / search-knob flags of `plan` and `explain`. Returns the
/// number of argv slots consumed (0 = not a model flag, -1 = parse error).
int parse_model_flag(perf::AutotuneConfig* cfg, int argc, char** argv, int i) {
  const char* a = argv[i];
  const bool has_value = i + 1 < argc;
  auto want = [&](const char* name) {
    return std::strcmp(a, name) == 0 && has_value;
  };
  if (want("--gpus")) {
    return parse_int_flag(a, argv[i + 1], &cfg->gpus) ? 2 : -1;
  }
  if (want("--layers")) {
    return parse_int_flag(a, argv[i + 1], &cfg->layers) ? 2 : -1;
  }
  if (want("--micros")) {
    return parse_int_flag(a, argv[i + 1], &cfg->micros) ? 2 : -1;
  }
  if (want("--max-stages")) {
    return parse_int_flag(a, argv[i + 1], &cfg->max_stages) ? 2 : -1;
  }
  if (want("--straggler-scale")) {
    cfg->straggler_scale = std::strtod(argv[i + 1], nullptr);
    if (cfg->straggler_scale < 1.0) {
      std::fprintf(stderr, "tsr_plan: --straggler-scale wants >= 1\n");
      return -1;
    }
    return 2;
  }
  if (want("--batch")) {
    return parse_i64_flag(a, argv[i + 1], &cfg->dims.batch) ? 2 : -1;
  }
  if (want("--seq")) {
    return parse_i64_flag(a, argv[i + 1], &cfg->dims.seq) ? 2 : -1;
  }
  if (want("--hidden")) {
    return parse_i64_flag(a, argv[i + 1], &cfg->dims.hidden) ? 2 : -1;
  }
  if (want("--heads")) {
    return parse_i64_flag(a, argv[i + 1], &cfg->dims.heads) ? 2 : -1;
  }
  return 0;
}

std::string human_bytes(double bytes) {
  char buf[32];
  if (bytes >= 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB",
                  bytes / (1024.0 * 1024.0 * 1024.0));
  } else if (bytes >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", bytes / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

void print_score(const perf::PlanCandidate& cand, const perf::PlanScore& s) {
  std::printf("candidate      %s  (%d GPUs)\n", cand.label().c_str(),
              cand.total_ranks());
  std::printf("  step         %.6f s   (%.3f steps/s)\n", s.step_seconds,
              s.step_seconds > 0 ? 1.0 / s.step_seconds : 0.0);
  std::printf("    forward    %.6f s\n", s.fwd_seconds);
  std::printf("    backward   %.6f s\n", s.bwd_seconds);
  std::printf("    bubble     %.6f s\n", s.bubble_seconds);
  std::printf("    optimizer  %.6f s\n", s.opt_seconds);
  std::printf("  peak memory  %s / rank\n", human_bytes(s.peak_bytes).c_str());
  std::printf("    weights    %s   gradients %s\n",
              human_bytes(s.weight_bytes).c_str(),
              human_bytes(s.weight_bytes).c_str());
  std::printf("    opt state  %s   activations %s\n",
              human_bytes(s.opt_state_bytes).c_str(),
              human_bytes(s.activation_bytes).c_str());
  std::printf("  straggler    %.6f s under rank-0 slowdown (x%.3f)\n",
              s.straggler_seconds, s.straggler_inflation);
  std::printf("  fwd comm     %lld msgs, %lld wire bytes\n",
              static_cast<long long>(s.fwd_stats.msgs_sent),
              static_cast<long long>(s.fwd_stats.bytes_sent));
  std::printf("  bwd comm     %lld msgs, %lld wire bytes\n",
              static_cast<long long>(s.bwd_stats.msgs_sent),
              static_cast<long long>(s.bwd_stats.bytes_sent));
}

int cmd_plan(int argc, char** argv) {
  perf::AutotuneConfig cfg = perf::AutotuneConfig::from_env();
  std::string out_path = "BENCH_autotune.json";
  for (int i = 0; i < argc;) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[i + 1];
      i += 2;
      continue;
    }
    const int used = parse_model_flag(&cfg, argc, argv, i);
    if (used <= 0) return used < 0 ? 1 : usage();
    i += used;
  }

  const std::vector<perf::ScoredCandidate> results = perf::autotune(cfg);
  if (results.empty()) {
    std::fprintf(stderr,
                 "tsr_plan: no legal mapping of hidden=%lld heads=%lld onto "
                 "%d GPUs\n",
                 static_cast<long long>(cfg.dims.hidden),
                 static_cast<long long>(cfg.dims.heads), cfg.gpus);
    return 1;
  }

  std::vector<std::size_t> order(results.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return results[a].score.step_seconds <
                            results[b].score.step_seconds;
                   });

  std::printf(
      "%d GPUs, %d layers, batch %lld x seq %lld x hidden %lld (%lld heads)\n",
      cfg.gpus, cfg.layers, static_cast<long long>(cfg.dims.batch),
      static_cast<long long>(cfg.dims.seq),
      static_cast<long long>(cfg.dims.hidden),
      static_cast<long long>(cfg.dims.heads));
  std::printf("%zu candidates; * = Pareto front "
              "(step time, peak bytes, straggler inflation)\n\n",
              results.size());
  std::printf("  %-28s %10s %10s %10s %12s %9s\n", "candidate", "step(s)",
              "fwd(s)", "bwd(s)", "peak/rank", "strag(x)");
  for (std::size_t idx : order) {
    const perf::ScoredCandidate& r = results[idx];
    std::printf("%c %-28s %10.6f %10.6f %10.6f %12s %9.3f\n",
                r.pareto ? '*' : ' ', r.cand.label().c_str(),
                r.score.step_seconds, r.score.fwd_seconds, r.score.bwd_seconds,
                human_bytes(r.score.peak_bytes).c_str(),
                r.score.straggler_inflation);
  }

  const obs::JsonValue doc = perf::autotune_to_json(cfg, results);
  if (!obs::write_json_file(out_path, doc)) {
    std::fprintf(stderr, "tsr_plan: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

int cmd_explain(int argc, char** argv) {
  perf::AutotuneConfig cfg = perf::AutotuneConfig::from_env();
  perf::PlanCandidate cand;
  bool have_scheme = false;
  std::string out_path;
  for (int i = 0; i < argc;) {
    if (std::strcmp(argv[i], "--megatron") == 0 && i + 1 < argc) {
      cand.scheme = perf::Scheme::Megatron1D;
      if (!parse_int_flag("--megatron", argv[i + 1], &cand.p)) return 1;
      have_scheme = true;
      i += 2;
    } else if (std::strcmp(argv[i], "--optimus") == 0 && i + 1 < argc) {
      cand.scheme = perf::Scheme::Optimus2D;
      if (!parse_int_flag("--optimus", argv[i + 1], &cand.q)) return 1;
      have_scheme = true;
      i += 2;
    } else if (std::strcmp(argv[i], "--tesseract") == 0 && i + 2 < argc) {
      cand.scheme = perf::Scheme::Tesseract;
      if (!parse_int_flag("--tesseract", argv[i + 1], &cand.q) ||
          !parse_int_flag("--tesseract", argv[i + 2], &cand.d)) {
        return 1;
      }
      have_scheme = true;
      i += 3;
    } else if (std::strcmp(argv[i], "--stages") == 0 && i + 1 < argc) {
      if (!parse_int_flag("--stages", argv[i + 1], &cand.stages)) return 1;
      i += 2;
    } else if (std::strcmp(argv[i], "--zero") == 0) {
      cand.zero = true;
      i += 1;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[i + 1];
      i += 2;
    } else {
      const int used = parse_model_flag(&cfg, argc, argv, i);
      if (used <= 0) return used < 0 ? 1 : usage();
      i += used;
    }
  }
  if (!have_scheme) return usage();
  cfg.gpus = cand.total_ranks();
  if (cfg.layers % cand.stages != 0) {
    std::fprintf(stderr, "tsr_plan: %d layers do not split into %d stages\n",
                 cfg.layers, cand.stages);
    return 1;
  }

  perf::PlanScore score;
  const perf::RunReport rep = perf::explain_candidate(cfg, cand, &score);
  print_score(cand, score);
  std::printf("\n%s", rep.to_string().c_str());
  if (!out_path.empty()) {
    if (!obs::write_json_file(out_path, rep.to_json())) {
      std::fprintf(stderr, "tsr_plan: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", out_path.c_str());
  }
  return 0;
}

int cmd_diff(int argc, char** argv) {
  if (argc < 2) return usage();
  double threshold = 0.0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::strtod(argv[++i], nullptr);
    } else {
      return usage();
    }
  }
  obs::JsonValue a, b;
  if (!load_json(argv[0], &a) || !load_json(argv[1], &b)) return 1;
  const perf::ReportDiffResult res = perf::diff_run_reports(a, b, threshold);
  std::printf("%s", res.to_string().c_str());
  if (res.failed()) {
    std::fprintf(stderr, "tsr_plan: diff FAILED (threshold %g)\n", threshold);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "plan") return cmd_plan(argc - 2, argv + 2);
    if (cmd == "explain") return cmd_explain(argc - 2, argv + 2);
    if (cmd == "diff") return cmd_diff(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tsr_plan: %s\n", e.what());
    return 1;
  }
  return usage();
}
