#!/usr/bin/env python3
"""Documentation consistency gate.

Two checks, run over README.md and docs/*.md:

1. Relative markdown links must resolve to an existing file or directory
   (anchors and external http(s)/mailto links are skipped).
2. Environment variables must be documented and real: the set of
   TESSERACT_* names appearing in the markdown must equal the set of
   TESSERACT_* string literals in src/ (the variables the code actually
   reads). A variable documented but never read, or read but never
   documented, fails the build.

Exit status 0 = clean, 1 = findings (each printed as file:line: message).
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# [text](target) — excluding images' leading '!' does not matter for
# existence checking, so match both. Inline code spans are stripped first.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
ENV_RE = re.compile(r"TESSERACT_[A-Z0-9_]+")
# The code's ground truth: quoted literals only, so CMake variables and
# prose prefixes like "TESSERACT_FAULT_" in comments do not count.
SRC_ENV_RE = re.compile(r'"(TESSERACT_[A-Z0-9_]+)"')


def markdown_files():
    files = [REPO / "README.md"]
    files += sorted((REPO / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def check_links(md: Path, errors: list):
    for lineno, line in enumerate(md.read_text().splitlines(), start=1):
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                errors.append(
                    f"{md.relative_to(REPO)}:{lineno}: broken link: {target}"
                )


def env_vars_in_docs():
    found = {}
    for md in markdown_files():
        for lineno, line in enumerate(md.read_text().splitlines(), start=1):
            for var in ENV_RE.findall(line):
                # "TESSERACT_FAULT_*"-style family references are prose, not
                # variable names (the greedy match leaves the underscore on).
                if var.endswith("_"):
                    continue
                found.setdefault(var, (md, lineno))
    return found


def env_vars_in_src():
    found = {}
    for src in sorted((REPO / "src").rglob("*")):
        if src.suffix not in (".cpp", ".hpp"):
            continue
        for lineno, line in enumerate(src.read_text().splitlines(), start=1):
            for var in SRC_ENV_RE.findall(line):
                found.setdefault(var, (src, lineno))
    return found


def main() -> int:
    errors = []
    mds = markdown_files()
    if len(mds) < 2:
        errors.append("expected README.md plus docs/*.md, found almost none")

    for md in mds:
        check_links(md, errors)

    docs_env = env_vars_in_docs()
    src_env = env_vars_in_src()
    for var in sorted(set(docs_env) - set(src_env)):
        md, lineno = docs_env[var]
        errors.append(
            f"{md.relative_to(REPO)}:{lineno}: {var} is documented but no "
            f"source file reads it"
        )
    for var in sorted(set(src_env) - set(docs_env)):
        src, lineno = src_env[var]
        errors.append(
            f"{src.relative_to(REPO)}:{lineno}: {var} is read by the code "
            f"but documented nowhere in README.md or docs/"
        )

    for e in errors:
        print(e)
    if not errors:
        print(
            f"docs check clean: {len(mds)} markdown files, "
            f"{len(src_env)} environment variables cross-checked"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
