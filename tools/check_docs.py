#!/usr/bin/env python3
"""Documentation consistency gate.

Three checks, run over README.md and docs/*.md:

1. Relative markdown links must resolve to an existing file or directory
   (anchors and external http(s)/mailto links are skipped).
2. Environment variables must be documented and real: the set of
   TESSERACT_* names appearing in the markdown must equal the set of
   TESSERACT_* string literals in src/ (the variables the code actually
   reads). A variable documented but never read, or read but never
   documented, fails the build.
3. Metric names must be documented and real, both directions. Source ground
   truth is (a) quoted literals shaped like metric names (runtime.*, comm.*,
   layer.*, ...) and (b) `// metric: <name>` annotations next to sites that
   assemble names at runtime; annotations may use `<placeholder>` segments.
   Doc ground truth is backtick code spans shaped like metric names, which
   may use `<placeholder>` segments and `{a,b}` alternation to document a
   family in one row. Every source metric must match a documented token, and
   every documented token must correspond to a real source metric.

4. CLI subcommands must be documented and real, both directions. Source
   ground truth is the dispatch comparison `cmd == "<sub>"` in each
   tools/tsr_*.cpp; doc ground truth is `tsr_<tool> <word>` occurrences
   inside backtick code spans and fenced code blocks (prose mentions do not
   count). A subcommand shipped but never shown in a doc, or shown in a doc
   but not dispatched by the tool, fails the build.

Exit status 0 = clean, 1 = findings (each printed as file:line: message).
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# [text](target) — excluding images' leading '!' does not matter for
# existence checking, so match both. Inline code spans are stripped first.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
ENV_RE = re.compile(r"TESSERACT_[A-Z0-9_]+")
# The code's ground truth: quoted literals only, so CMake variables and
# prose prefixes like "TESSERACT_FAULT_" in comments do not count.
SRC_ENV_RE = re.compile(r'"(TESSERACT_[A-Z0-9_]+)"')

# ---- Metric-name cross-check ------------------------------------------------
# Name shapes the instrumentation uses (see docs/observability.md). A final
# [a-z0-9_] excludes partial prefixes like the "comm." literal the
# communicator concatenates from.
METRIC_PREFIX = r"(?:runtime|comm|layer|fault|sim|train|pipeline|obs|serve|kernel)"
SRC_METRIC_RE = re.compile(rf'"({METRIC_PREFIX}\.[a-z0-9_.]*[a-z0-9_])"')
# Sites that assemble a metric name at runtime declare the family next to the
# code: `// metric: comm.<op>.sim_seconds`.
ANNOTATION_RE = re.compile(
    rf"//\s*metric:\s*({METRIC_PREFIX}\.[a-z0-9_.<>]*[a-z0-9_>])\s*$"
)
CODE_SPAN_RE = re.compile(r"`([^`]+)`")
DOC_METRIC_RE = re.compile(rf"{METRIC_PREFIX}\.[a-z0-9_.<>{{}},]*[a-z0-9_>}}]")
# Backticked file names (fault.hpp) and span names are not metric names.
NON_METRIC_SUFFIXES = (".hpp", ".cpp", ".md", ".py", ".json", ".txt", ".html")


def expand_braces(token: str):
    """Expands `{a,b}` alternation: one doc row covers a family of names."""
    m = re.search(r"\{([^{}]*)\}", token)
    if not m:
        return [token]
    out = []
    for alt in m.group(1).split(","):
        out += expand_braces(token[: m.start()] + alt + token[m.end() :])
    return out


def token_regex(token: str) -> "re.Pattern":
    """Compiles a doc/annotation token: `<placeholder>` matches one segment."""
    pattern = "".join(
        "[a-z0-9_]+" if part.startswith("<") else re.escape(part)
        for part in re.split(r"(<[a-z0-9_]+>)", token)
    )
    return re.compile(pattern + r"\Z")


def metrics_in_src():
    """(literals, annotations): each maps name -> first (file, line)."""
    literals, annotations = {}, {}
    for src in sorted((REPO / "src").rglob("*")):
        if src.suffix not in (".cpp", ".hpp"):
            continue
        for lineno, line in enumerate(src.read_text().splitlines(), start=1):
            for m in ANNOTATION_RE.finditer(line):
                annotations.setdefault(m.group(1), (src, lineno))
            if "//" in line and "metric:" in line:
                continue  # annotation or prose comment, not a recording site
            for name in SRC_METRIC_RE.findall(line):
                if not name.endswith(NON_METRIC_SUFFIXES):
                    literals.setdefault(name, (src, lineno))
    return literals, annotations


def metrics_in_docs():
    """Backtick code spans shaped like metric names -> first (file, line)."""
    found = {}
    for md in markdown_files():
        for lineno, line in enumerate(md.read_text().splitlines(), start=1):
            for span in CODE_SPAN_RE.findall(line):
                if not DOC_METRIC_RE.fullmatch(span):
                    continue
                if span.endswith(NON_METRIC_SUFFIXES):
                    continue
                for token in expand_braces(span):
                    found.setdefault(token, (md, lineno))
    return found


def check_metrics(errors: list):
    literals, annotations = metrics_in_src()
    doc_tokens = metrics_in_docs()
    doc_patterns = {tok: token_regex(tok) for tok in doc_tokens}

    # Source -> docs: every recorded name must match some documented token.
    for name in sorted(literals):
        if any(p.fullmatch(name) for p in doc_patterns.values()):
            continue
        src, lineno = literals[name]
        errors.append(
            f"{src.relative_to(REPO)}:{lineno}: metric {name} is recorded "
            f"but not documented in README.md or docs/"
        )
    # Annotated families must be documented verbatim (same placeholder form).
    for name in sorted(set(annotations) - set(doc_tokens)):
        src, lineno = annotations[name]
        errors.append(
            f"{src.relative_to(REPO)}:{lineno}: metric family {name} is "
            f"annotated in source but not documented verbatim in docs"
        )
    # Docs -> source: every documented token must name something real —
    # a recorded literal (possibly via placeholders) or an annotated family.
    annotation_patterns = [token_regex(a) for a in annotations]
    for token in sorted(doc_tokens):
        if token in annotations:
            continue
        if any(p.fullmatch(token) for p in annotation_patterns):
            continue
        if any(doc_patterns[token].fullmatch(name) for name in literals):
            continue
        md, lineno = doc_tokens[token]
        errors.append(
            f"{md.relative_to(REPO)}:{lineno}: metric {token} is documented "
            f"but never recorded by the code"
        )


# ---- CLI subcommand cross-check ---------------------------------------------
# Every tool dispatches with the same idiom: `if (cmd == "plan") ...`. That
# literal comparison is the source ground truth for its subcommand set.
SRC_SUBCMD_RE = re.compile(r'cmd\s*==\s*"([a-z][a-z_-]*)"')
# A usage is the tool name followed by one lowercase word (the subcommand);
# flags (leading '-') and file operands (containing '.') never match.
DOC_TOOL_USE_RE = re.compile(r"\b(tsr_[a-z_]+)\s+([a-z][a-z_-]*)\b")


def cli_subcommands_in_src():
    """tool name -> {subcommand: (file, line)} from tools/tsr_*.cpp."""
    tools = {}
    for src in sorted((REPO / "tools").glob("tsr_*.cpp")):
        subs = {}
        for lineno, line in enumerate(src.read_text().splitlines(), start=1):
            for sub in SRC_SUBCMD_RE.findall(line):
                subs.setdefault(sub, (src, lineno))
        tools[src.stem] = subs
    return tools


def cli_uses_in_docs():
    """(tool, subcommand) -> first (file, line): spans + fenced blocks."""
    found = {}
    for md in markdown_files():
        in_fence = False
        for lineno, line in enumerate(md.read_text().splitlines(), start=1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            regions = [line] if in_fence else CODE_SPAN_RE.findall(line)
            for region in regions:
                for tool, sub in DOC_TOOL_USE_RE.findall(region):
                    found.setdefault((tool, sub), (md, lineno))
    return found


def check_cli(errors: list):
    tools = cli_subcommands_in_src()
    doc_uses = cli_uses_in_docs()
    # Source -> docs: every shipped subcommand must be shown at least once.
    for tool, subs in sorted(tools.items()):
        for sub, (src, lineno) in sorted(subs.items()):
            if (tool, sub) not in doc_uses:
                errors.append(
                    f"{src.relative_to(REPO)}:{lineno}: subcommand "
                    f"`{tool} {sub}` exists but no doc code span or fenced "
                    f"block shows it"
                )
    # Docs -> source: every shown usage must be a real tool + subcommand.
    for (tool, sub), (md, lineno) in sorted(doc_uses.items()):
        if tool not in tools:
            errors.append(
                f"{md.relative_to(REPO)}:{lineno}: `{tool}` is shown as a "
                f"command but tools/{tool}.cpp does not exist"
            )
        elif sub not in tools[tool]:
            errors.append(
                f"{md.relative_to(REPO)}:{lineno}: `{tool} {sub}` is shown "
                f"but {tool} dispatches no such subcommand"
            )


def markdown_files():
    files = [REPO / "README.md"]
    files += sorted((REPO / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def check_links(md: Path, errors: list):
    for lineno, line in enumerate(md.read_text().splitlines(), start=1):
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                errors.append(
                    f"{md.relative_to(REPO)}:{lineno}: broken link: {target}"
                )


def env_vars_in_docs():
    found = {}
    for md in markdown_files():
        for lineno, line in enumerate(md.read_text().splitlines(), start=1):
            for var in ENV_RE.findall(line):
                # "TESSERACT_FAULT_*"-style family references are prose, not
                # variable names (the greedy match leaves the underscore on).
                if var.endswith("_"):
                    continue
                found.setdefault(var, (md, lineno))
    return found


def env_vars_in_src():
    found = {}
    roots = [REPO / "src", REPO / "tools", REPO / "bench"]
    for src in sorted(p for root in roots for p in root.rglob("*")):
        if src.suffix not in (".cpp", ".hpp"):
            continue
        for lineno, line in enumerate(src.read_text().splitlines(), start=1):
            for var in SRC_ENV_RE.findall(line):
                found.setdefault(var, (src, lineno))
    return found


def main() -> int:
    errors = []
    mds = markdown_files()
    if len(mds) < 2:
        errors.append("expected README.md plus docs/*.md, found almost none")

    for md in mds:
        check_links(md, errors)

    check_metrics(errors)
    check_cli(errors)

    docs_env = env_vars_in_docs()
    src_env = env_vars_in_src()
    for var in sorted(set(docs_env) - set(src_env)):
        md, lineno = docs_env[var]
        errors.append(
            f"{md.relative_to(REPO)}:{lineno}: {var} is documented but no "
            f"source file reads it"
        )
    for var in sorted(set(src_env) - set(docs_env)):
        src, lineno = src_env[var]
        errors.append(
            f"{src.relative_to(REPO)}:{lineno}: {var} is read by the code "
            f"but documented nowhere in README.md or docs/"
        )

    for e in errors:
        print(e)
    if not errors:
        literals, annotations = metrics_in_src()
        n_subs = sum(len(s) for s in cli_subcommands_in_src().values())
        print(
            f"docs check clean: {len(mds)} markdown files, "
            f"{len(src_env)} environment variables, "
            f"{len(literals) + len(annotations)} metric names and "
            f"{n_subs} CLI subcommands cross-checked"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
