// Train a small Vision Transformer serially and with Tesseract [2,2,1] on
// the synthetic dataset — a miniature of the paper's Fig. 7 experiment.
//
//   $ ./example_vit_training
#include <cstdio>

#include "train/trainer.hpp"

using namespace tsr::train;

int main() {
  DatasetConfig dcfg;
  dcfg.classes = 4;
  dcfg.samples_per_class = 16;
  dcfg.image_size = 8;
  dcfg.channels = 3;
  dcfg.seed = 11;
  SyntheticImageDataset data(dcfg);

  VitConfig vcfg;
  vcfg.image_size = 8;
  vcfg.patch_size = 4;
  vcfg.channels = 3;
  vcfg.hidden = 16;
  vcfg.heads = 4;
  vcfg.layers = 2;
  vcfg.classes = 4;

  TrainConfig tcfg;
  tcfg.epochs = 5;
  tcfg.batch_size = 16;
  tcfg.lr = 2e-3f;

  std::printf("ViT-lite on the synthetic dataset (%d samples, %d classes)\n\n",
              data.size(), data.classes());

  std::printf("training on a single device...\n");
  auto serial = train_vit_serial(data, vcfg, tcfg);
  std::printf("training on Tesseract [2,2,1] (4 virtual ranks)...\n\n");
  auto parallel = train_vit_tesseract(data, vcfg, tcfg, 2, 1);

  std::printf("%-7s %14s %14s %14s %14s\n", "epoch", "serial loss",
              "tesseract loss", "serial acc", "tesseract acc");
  for (std::size_t e = 0; e < serial.size(); ++e) {
    std::printf("%-7zu %14.4f %14.4f %14.4f %14.4f\n", e + 1, serial[e].loss,
                parallel[e].loss, serial[e].accuracy, parallel[e].accuracy);
  }
  std::printf("\nThe curves coincide: Tesseract introduces no approximation.\n");
  return 0;
}
