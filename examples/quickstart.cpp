// Quickstart: run one Tesseract matrix multiplication on a virtual [2,2,2]
// cluster, check it against the serial product, and look at the clocks and
// byte counters the simulation produces.
//
//   $ ./example_quickstart
#include <cstdio>

#include "comm/communicator.hpp"
#include "pdgemm/serial.hpp"
#include "pdgemm/tesseract_mm.hpp"
#include "tensor/init.hpp"
#include "tensor/kernels.hpp"

using namespace tsr;

int main() {
  const int q = 2;  // Tesseract dimension
  const int d = 2;  // Tesseract depth
  const int ranks = q * q * d;

  // Random input matrices, Xavier-style scale (the paper's Section 4
  // validation protocol).
  Rng rng(2022);
  Tensor a = random_normal({64, 48}, rng);
  Tensor b = random_normal({48, 32}, rng);
  Tensor ref = pdg::serial_matmul(a, b);

  // A virtual cluster of 8 ranks with the MeluXina machine model:
  // 4 GPUs/node, NVLink inside a node, InfiniBand between nodes.
  comm::World world(ranks, topo::MachineSpec::meluxina());

  float err = -1.0f;
  world.run([&](comm::Communicator& comm) {
    // Build the [q, q, d] grid communicators for this rank.
    pdg::TesseractComms tc = pdg::TesseractComms::create(comm, q, d);

    // Algorithm 3 end to end: distribute per Fig. 4, multiply, recombine.
    Tensor c = pdg::tesseract_matmul(tc, a, b);

    if (comm.rank() == 0) err = max_abs_diff(c, ref);
  });

  std::printf("Tesseract [%d,%d,%d] on %d virtual ranks\n", q, q, d, ranks);
  std::printf("max |C_tesseract - C_serial| = %g\n", static_cast<double>(err));
  std::printf("simulated time on MeluXina model: %.2f us\n",
              world.max_sim_time() * 1e6);
  std::printf("\ncommunication totals:\n%s",
              world.total_stats().to_string().c_str());
  return err < 1e-3f ? 0 : 1;
}
