// GPT-style causal language model on Tesseract (paper Section 3.3): train
// the same tiny decoder serially and on a [2,2,2] grid; the loss curves
// coincide and the model solves the synthetic copy task.
//
//   $ ./example_lm_training
#include <cstdio>

#include "train/lm.hpp"

using namespace tsr::train;

int main() {
  SyntheticCorpus corpus(/*samples=*/32, /*seq=*/8, /*vocab=*/16,
                         /*period=*/2, /*seed=*/5);
  LmConfig mcfg;
  mcfg.vocab = 16;
  mcfg.seq = 8;
  mcfg.hidden = 16;
  mcfg.heads = 4;
  mcfg.layers = 2;

  TrainConfig tcfg;
  tcfg.epochs = 6;
  tcfg.batch_size = 8;
  tcfg.lr = 3e-3f;

  std::printf("causal LM on the periodic-copy task (%d samples, vocab %lld)\n\n",
              corpus.size(), static_cast<long long>(mcfg.vocab));
  std::printf("training on a single device...\n");
  auto serial = train_lm_serial(corpus, mcfg, tcfg);
  std::printf("training on Tesseract [2,2,2] (8 virtual ranks)...\n\n");
  auto parallel = train_lm_tesseract(corpus, mcfg, tcfg, 2, 2);

  std::printf("%-7s %14s %14s %16s %16s\n", "epoch", "serial loss",
              "tesseract loss", "serial tok-acc", "tesseract tok-acc");
  for (std::size_t e = 0; e < serial.size(); ++e) {
    std::printf("%-7zu %14.4f %14.4f %16.4f %16.4f\n", e + 1, serial[e].loss,
                parallel[e].loss, serial[e].accuracy, parallel[e].accuracy);
  }
  std::printf(
      "\nSection 3.3 in practice: the causal mask is per-head-local, so the\n"
      "GPT-style decoder parallelizes exactly like the encoder — no extra\n"
      "communication, no accuracy change.\n");
  return 0;
}
