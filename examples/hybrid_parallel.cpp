// Hybrid parallelism (paper Section 3.4): pipeline stages of Tesseract
// grids with GPipe micro-batching, plus activation checkpointing — the
// public API for composing the paper's parallel axes.
//
//   $ ./example_hybrid_parallel
#include <cstdio>

#include "comm/communicator.hpp"
#include "parallel/dist.hpp"
#include "parallel/pipeline.hpp"
#include "tensor/init.hpp"

using namespace tsr;

int main() {
  // 2 pipeline stages x Tesseract [2,2,1]: 8 virtual ranks.
  par::PipelineConfig cfg;
  cfg.stages = 2;
  cfg.layers_per_stage = 2;
  cfg.q = 2;
  cfg.d = 1;
  cfg.micro_batch = 4;
  cfg.seq = 8;
  cfg.hidden = 32;
  cfg.heads = 4;
  const int micros = 4;

  Rng data_rng(3);
  std::vector<Tensor> micro_inputs;
  std::vector<Tensor> micro_grads;
  for (int m = 0; m < micros; ++m) {
    micro_inputs.push_back(
        random_normal({cfg.micro_batch, cfg.seq, cfg.hidden}, data_rng));
    micro_grads.push_back(
        random_normal({cfg.micro_batch, cfg.seq, cfg.hidden}, data_rng));
  }

  comm::World world(cfg.total_ranks(), topo::MachineSpec::meluxina());
  world.enable_tracing();
  world.run([&](comm::Communicator& c) {
    Rng wrng(9);
    par::TesseractPipeline pipe(c, cfg, wrng);

    std::vector<Tensor> in_local(static_cast<std::size_t>(micros));
    std::vector<Tensor> gr_local(static_cast<std::size_t>(micros));
    for (int m = 0; m < micros; ++m) {
      in_local[static_cast<std::size_t>(m)] = par::distribute_activation(
          pipe.context().comms(), micro_inputs[static_cast<std::size_t>(m)]);
      gr_local[static_cast<std::size_t>(m)] = par::distribute_activation(
          pipe.context().comms(), micro_grads[static_cast<std::size_t>(m)]);
    }

    // GPipe sweep: all micros forward (caches stack up), then backward in
    // reverse order (stacks pop LIFO).
    (void)pipe.forward(in_local);
    (void)pipe.backward(gr_local);

    if (c.rank() == 0) {
      std::printf("stage %d owns %zu encoder layers on a [%d,%d,%d] grid\n",
                  pipe.stage(), pipe.layers().size(), cfg.q, cfg.q, cfg.d);
    }
  });

  std::printf("pipeline step complete: %d micro-batches over %d stages\n",
              micros, cfg.stages);
  std::printf("simulated time: %.1f us, wire traffic %.2f MB\n",
              world.max_sim_time() * 1e6,
              static_cast<double>(world.total_stats().bytes_sent) / (1 << 20));
  if (world.write_chrome_trace("pipeline_trace.json")) {
    std::printf(
        "wrote pipeline_trace.json — open in chrome://tracing or Perfetto\n"
        "to see the GPipe overlap and bubble on the simulated timeline\n");
  }
  std::printf(
      "\nThe per-rank simulated clocks overlap: while stage 1 processes\n"
      "micro-batch i, stage 0 is already computing micro-batch i+1 — the\n"
      "GPipe schedule the paper's Section 3.4 composes with Tesseract.\n");
  return 0;
}
