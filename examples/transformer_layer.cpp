// A full Tesseract-parallel Transformer encoder layer: forward + backward on
// a [2,2,2] grid, validated against the serial layer, with the per-scheme
// communication comparison the paper's Section 3 is about.
//
//   $ ./example_transformer_layer
#include <cstdio>

#include "comm/communicator.hpp"
#include "nn/transformer.hpp"
#include "parallel/dist.hpp"
#include "parallel/megatron.hpp"
#include "parallel/tesseract_transformer.hpp"
#include "tensor/init.hpp"
#include "tensor/kernels.hpp"

using namespace tsr;

namespace {

struct RunStats {
  double sim_us;
  std::int64_t bytes;
  float err;
};

}  // namespace

int main() {
  const std::int64_t b = 8, s = 16, h = 64, heads = 8;
  Rng data_rng(1);
  Tensor x = random_normal({b, s, h}, data_rng);
  Tensor dy = random_normal({b, s, h}, data_rng);

  // Serial ground truth.
  Rng serial_rng(99);
  nn::TransformerLayer serial(h, heads, serial_rng);
  Tensor y_ref = serial.forward(x);
  (void)serial.backward(dy);

  // Tesseract [2,2,2].
  RunStats tess{};
  {
    comm::World world(8, topo::MachineSpec::meluxina());
    world.run([&](comm::Communicator& c) {
      par::TesseractContext ctx(c, 2, 2);
      Rng wrng(99);
      par::TesseractTransformerLayer layer(ctx, h, heads, wrng);
      Tensor yl = layer.forward(par::distribute_activation(ctx.comms(), x));
      Tensor y = par::collect_activation(ctx.comms(), yl, b, s, h);
      (void)layer.backward(par::distribute_activation(ctx.comms(), dy));
      if (c.rank() == 0) tess.err = max_abs_diff(y, y_ref);
    });
    tess.sim_us = world.max_sim_time() * 1e6;
    tess.bytes = world.total_stats().bytes_sent;
  }

  // Megatron-LM 1-D on 8 ranks, same model.
  RunStats mega{};
  {
    comm::World world(8, topo::MachineSpec::meluxina());
    world.run([&](comm::Communicator& c) {
      par::MegatronContext ctx(c);
      Rng wrng(99);
      par::MegatronTransformerLayer layer(ctx, h, heads, wrng);
      Tensor y = layer.forward(x);
      (void)layer.backward(dy);
      if (c.rank() == 0) mega.err = max_abs_diff(y, y_ref);
    });
    mega.sim_us = world.max_sim_time() * 1e6;
    mega.bytes = world.total_stats().bytes_sent;
  }

  std::printf("Transformer layer fwd+bwd, b=%lld s=%lld h=%lld heads=%lld, 8 ranks\n\n",
              static_cast<long long>(b), static_cast<long long>(s),
              static_cast<long long>(h), static_cast<long long>(heads));
  std::printf("%-22s %12s %14s %12s\n", "scheme", "max err", "wire bytes",
              "sim time us");
  std::printf("%-22s %12g %14lld %12.1f\n", "Tesseract [2,2,2]",
              static_cast<double>(tess.err), static_cast<long long>(tess.bytes),
              tess.sim_us);
  std::printf("%-22s %12g %14lld %12.1f\n", "Megatron-LM [8]",
              static_cast<double>(mega.err), static_cast<long long>(mega.bytes),
              mega.sim_us);
  std::printf(
      "\nBoth schemes reproduce the serial layer exactly; they differ in\n"
      "where the bytes go (Tesseract: weight panels within a layer;\n"
      "Megatron: full-activation all-reduces).\n");
  return (tess.err < 1e-3f && mega.err < 1e-3f) ? 0 : 1;
}
