// Grid explorer: the paper's "flexible depth and dimension" pitch in action.
// Given a GPU budget and a model, enumerate every legal [q, q, d]
// arrangement (plus the Megatron 1-D baseline), evaluate each with the cost
// model, and report the best — "help users use their GPUs in the most
// efficient way" (Section 1).
//
//   $ ./example_grid_explorer [gpu_budget] [hidden] [heads] [batch]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "perf/cost_model.hpp"

using namespace tsr;

int main(int argc, char** argv) {
  const int budget = argc > 1 ? std::atoi(argv[1]) : 64;
  const std::int64_t hidden = argc > 2 ? std::atoll(argv[2]) : 3072;
  const std::int64_t heads = argc > 3 ? std::atoll(argv[3]) : 64;
  const std::int64_t batch = argc > 4 ? std::atoll(argv[4]) : 16;

  const perf::LayerDims dims{batch, 512, hidden, heads};

  struct Candidate {
    perf::EvalConfig cfg;
    perf::EvalResult res;
  };
  std::vector<Candidate> results;

  // Every [q, q, d] with q*q*d <= budget, d <= q (the paper's constraint),
  // and h, heads divisible by q.
  for (int q = 1; q * q <= budget; ++q) {
    if (hidden % q != 0 || heads % q != 0) continue;
    for (int d = 1; d <= q && q * q * d <= budget; ++d) {
      perf::EvalConfig cfg{.scheme = perf::Scheme::Tesseract, .q = q, .d = d,
                           .dims = dims, .layers = 4};
      results.push_back({cfg, perf::evaluate(cfg)});
    }
  }
  // Megatron baseline at the full budget (if divisibility allows).
  if (hidden % budget == 0 && heads % budget == 0) {
    perf::EvalConfig cfg{.scheme = perf::Scheme::Megatron1D, .p = budget,
                         .dims = dims, .layers = 4};
    results.push_back({cfg, perf::evaluate(cfg)});
  }

  std::printf("GPU budget %d, hidden %lld, heads %lld, batch %lld\n\n", budget,
              static_cast<long long>(hidden), static_cast<long long>(heads),
              static_cast<long long>(batch));
  std::printf("%-14s %10s %7s %12s %12s %12s\n", "scheme", "shape", "GPUs",
              "fwd (s)", "fwd+bwd (s)", "throughput");

  const Candidate* best = nullptr;
  for (const Candidate& c : results) {
    std::printf("%-14s %10s %7d %12.4f %12.4f %12.2f\n",
                perf::scheme_name(c.cfg.scheme).c_str(),
                c.cfg.shape_string().c_str(), c.cfg.total_ranks(),
                c.res.fwd_seconds, c.res.fwd_seconds + c.res.bwd_seconds,
                c.res.throughput);
    if (best == nullptr || c.res.throughput > best->res.throughput) {
      best = &c;
    }
  }
  if (best != nullptr) {
    std::printf("\nBest arrangement: %s %s — %.2f sequences/s\n",
                perf::scheme_name(best->cfg.scheme).c_str(),
                best->cfg.shape_string().c_str(), best->res.throughput);
  }
  return 0;
}
